#include "scenario/program_registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "baselines/anderson_weber.hpp"
#include "baselines/gather.hpp"
#include "baselines/random_walk.hpp"
#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "core/main_rendezvous.hpp"
#include "core/no_whiteboard.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace fnr::scenario {

std::string ProgramCaps::describe() const {
  std::vector<const char*> needs;
  if (needs_whiteboards) needs.push_back("whiteboards");
  if (needs_tight_ids) needs.push_back("tight-ids");
  if (needs_complete_graph) needs.push_back("complete-graph");
  if (needs_shared_neighborhood) needs.push_back("shared-neighborhood");
  std::vector<const char*> supports;
  if (supports_multi_agent) supports.push_back("k>2");
  if (supports_gather_all) supports.push_back("all-meet");
  std::ostringstream os;
  os << "needs:";
  if (needs.empty()) os << " -";
  for (const auto* item : needs) os << " " << item;
  os << "; supports:";
  if (supports.empty()) os << " -";
  for (const auto* item : supports) os << " " << item;
  return os.str();
}

void ProgramDef::validate() const {
  FNR_CHECK_MSG(!label.empty(), "program needs a label");
  FNR_CHECK_MSG(label.find_first_of("?&,| \t\r\n") == std::string::npos,
                "program label '" << label
                                  << "' may not contain '?', '&', ',', '|', "
                                     "or whitespace (labels name cells in "
                                     "sweep keys and spec lists)");
  FNR_CHECK_MSG(!description.empty(),
                "program '" << label << "' needs a description");
  const bool asymmetric = seeker != nullptr && marker != nullptr;
  const bool is_symmetric = symmetric != nullptr;
  FNR_CHECK_MSG(asymmetric != is_symmetric,
                "program '" << label
                            << "' must set either seeker+marker or "
                               "symmetric, not both");
  FNR_CHECK_MSG(round_cap != nullptr,
                "program '" << label << "' needs a round-cap policy");
  FNR_CHECK_MSG(!caps.needs_whiteboards || model.whiteboards,
                "program '" << label
                            << "' needs whiteboards but registers a "
                               "whiteboard-free model");
  for (const auto& [name, fallback] : parameters)
    FNR_CHECK_MSG(std::isfinite(fallback),
                  "program '" << label << "': parameter '" << name
                              << "' declares a non-finite default");
}

// --- handles -----------------------------------------------------------------

const ProgramDef& Program::def() const {
  FNR_CHECK_MSG(def_ != nullptr, "invalid (default-constructed) program "
                                 "handle; obtain one via find_program");
  return *def_;
}

double Program::param(const std::string& name) const {
  const ProgramDef& d = def();
  // NaN poisons every comparison downstream (a factory's range check like
  // `v >= 0 && v < 1` is silently false-false), so reject non-finite
  // values here by name instead of letting them surface as a confusing
  // range error — or worse, no error at all.
  const auto checked = [&](double value) {
    FNR_CHECK_MSG(std::isfinite(value),
                  "program '" << d.label << "': parameter '" << name
                              << "' must be finite, got " << value);
    return value;
  };
  if (const auto it = overrides_.find(name); it != overrides_.end())
    return checked(it->second);
  if (const auto it = d.parameters.find(name); it != d.parameters.end())
    return checked(it->second);
  FNR_CHECK_MSG(false, "program '" << d.label << "' has no parameter '"
                                   << name << "'");
  throw std::logic_error("unreachable");
}

namespace {

/// Shortest round-trip decimal form of an override value: the canonical
/// label is a cell identity, so parsing it back must yield the exact same
/// program ("0.25" stays "0.25", "0.1234567" is not truncated).
std::string round_trip_double(double value) {
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  FNR_CHECK(ec == std::errc());
  return std::string(buffer, end);
}

}  // namespace

Program make_program(const ProgramDef& def,
                     std::map<std::string, double> overrides) {
  Program program;
  program.def_ = &def;
  program.overrides_ = std::move(overrides);
  std::ostringstream label;
  label << def.label;
  // std::map iteration is name-sorted, so the canonical spec string is
  // independent of the order the user wrote the overrides in.
  bool first = true;
  for (const auto& [name, value] : program.overrides_) {
    label << (first ? "?" : "&") << name << "="
          << round_trip_double(value);
    first = false;
  }
  program.label_ = label.str();
  return program;
}

const std::string& to_string(const Program& program) noexcept {
  return program.label();
}

// --- registry ----------------------------------------------------------------

namespace {

/// Shared by the paper-strategy registrations: agents 1..k-1 run the
/// oblivious marker role; only the model and the seeker differ.
std::deque<ProgramDef> builtin_programs() {
  std::deque<ProgramDef> defs;

  {
    ProgramDef def;
    def.label = "whiteboard";
    def.description =
        "Theorem 1 Main-Rendezvous: seeker probes its dense set T^a, "
        "markers stamp random closed neighbors (agents know delta)";
    def.paper_ref = "Theorem 1";
    def.caps.needs_whiteboards = true;
    def.caps.needs_shared_neighborhood = true;
    def.model = sim::Model::full();
    def.core_strategy = core::Strategy::Whiteboard;
    def.seeker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      const auto delta = static_cast<double>(build.graph.min_degree());
      return std::make_unique<core::WhiteboardAgentA>(build.params, delta,
                                                      build.rng);
    };
    def.marker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<core::WhiteboardAgentB>(build.rng);
    };
    def.round_cap = [](const graph::Graph& g, const core::Params& params) {
      return core::auto_round_cap(g, core::Strategy::Whiteboard, params);
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "whiteboard+doubling";
    def.description =
        "Theorem 1 + §4.1: Main-Rendezvous with delta estimated by "
        "doubling (restart Construct whenever a smaller degree is seen)";
    def.paper_ref = "Theorem 1 + §4.1";
    def.caps.needs_whiteboards = true;
    def.caps.needs_shared_neighborhood = true;
    def.model = sim::Model::full();
    def.core_strategy = core::Strategy::WhiteboardDoubling;
    def.seeker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<core::WhiteboardAgentA>(build.params,
                                                      /*known_delta=*/-1.0,
                                                      build.rng);
    };
    def.marker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<core::WhiteboardAgentB>(build.rng);
    };
    def.round_cap = [](const graph::Graph& g, const core::Params& params) {
      return core::auto_round_cap(g, core::Strategy::WhiteboardDoubling,
                                  params);
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "no-whiteboard";
    def.description =
        "Theorem 2 whiteboard-free rendezvous under tight naming: "
        "phase-scheduled probing with ID-derived waiting";
    def.paper_ref = "Theorem 2";
    def.caps.needs_tight_ids = true;
    def.caps.needs_shared_neighborhood = true;
    def.model = sim::Model::no_whiteboards();
    def.core_strategy = core::Strategy::NoWhiteboard;
    def.seeker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      const auto delta = static_cast<double>(build.graph.min_degree());
      return std::make_unique<core::NoWhiteboardAgentA>(build.params, delta,
                                                        build.rng);
    };
    def.marker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      const auto delta = static_cast<double>(build.graph.min_degree());
      return std::make_unique<core::NoWhiteboardAgentB>(build.params, delta,
                                                        build.rng);
    };
    def.round_cap = [](const graph::Graph& g, const core::Params& params) {
      return core::auto_round_cap(g, core::Strategy::NoWhiteboard, params);
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "random-walk";
    def.description =
        "every agent an independent lazy random walk (classic meeting-time "
        "baseline; laziness breaks the bipartite parity lock)";
    def.paper_ref = "§1.3 meeting times";
    def.model = sim::Model::full();
    def.parameters = {{"laziness", 0.5}};
    def.symmetric = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      const double laziness = build.program.param("laziness");
      FNR_CHECK_MSG(laziness >= 0.0 && laziness < 1.0,
                    "random-walk: laziness must be in [0, 1), got "
                        << laziness);
      return std::make_unique<baselines::RandomWalkAgent>(build.rng,
                                                          laziness);
    };
    def.round_cap = [](const graph::Graph& g, const core::Params&) {
      // Two independent lazy walks meet in O~(n) on the dense families and
      // O(n log n)-ish on tori/small worlds; a wide log-linear budget keeps
      // failures meaningful without unbounded trials.
      const auto n = static_cast<double>(g.num_vertices());
      return static_cast<std::uint64_t>(32.0 * n * (std::log2(n) + 1.0)) +
             1024;
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "explore-rally";
    def.description =
        "DFS the graph under KT1, then rally at the minimum vertex ID — "
        "the coordination that makes Gathering::All reachable (O(n), "
        "deterministic)";
    def.paper_ref = "gathering folklore";
    def.caps.supports_gather_all = true;
    def.model = sim::Model::full();
    def.symmetric = [](AgentBuild&) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::GatherAtMinAgent>();
    };
    def.round_cap = [](const graph::Graph& g, const core::Params&) {
      // DFS walk <= 2(n-1) moves plus a rally route <= diameter < n.
      return 4 * static_cast<std::uint64_t>(g.num_vertices()) + 1024;
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "anderson-weber";
    def.description =
        "Anderson–Weber-style complete-graph rendezvous: markers stamp "
        "uniform vertices, the seeker reads uniform vertices, a birthday "
        "collision after Θ(sqrt(n)) probes";
    def.paper_ref = "§1.3 [6]";
    def.caps.needs_whiteboards = true;
    def.caps.needs_complete_graph = true;
    def.model = sim::Model::full();
    def.seeker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::AndersonWeberAgentA>(build.rng);
    };
    def.marker = [](AgentBuild& build) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::AndersonWeberAgentB>(build.rng);
    };
    def.round_cap = [](const graph::Graph& g, const core::Params&) {
      // ~4 sqrt(n) expected probes at 2 rounds each; 128 sqrt(n) leaves
      // the failure probability negligible.
      const auto n = static_cast<double>(g.num_vertices());
      return static_cast<std::uint64_t>(128.0 * std::sqrt(n)) + 1024;
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "wait-and-explore";
    def.description =
        "the exhaustive-search yardstick (§1.1): markers halt, the seeker "
        "DFS-explores every vertex within 2(n-1) rounds";
    def.paper_ref = "§1.1 exhaustive search";
    def.model = sim::Model::full();
    def.seeker = [](AgentBuild&) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::ExploreAgent>();
    };
    def.marker = [](AgentBuild&) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::WaitingAgent>();
    };
    def.round_cap = [](const graph::Graph& g, const core::Params&) {
      return 4 * static_cast<std::uint64_t>(g.num_vertices()) + 1024;
    };
    defs.push_back(std::move(def));
  }

  {
    ProgramDef def;
    def.label = "wait-and-sweep";
    def.description =
        "the trivial O(Delta) bound: markers halt, the seeker visits every "
        "port of its start out-and-back (needs only port numbers)";
    def.paper_ref = "§1 trivial bound";
    def.caps.needs_shared_neighborhood = true;
    def.model = sim::Model::port_only();
    def.seeker = [](AgentBuild&) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::SweepAgent>();
    };
    def.marker = [](AgentBuild&) -> std::unique_ptr<sim::Agent> {
      return std::make_unique<baselines::WaitingAgent>();
    };
    def.round_cap = [](const graph::Graph& g, const core::Params&) {
      // Out-and-back over <= Delta ports; distance-1 instances meet within
      // 2 deg(v0a) rounds, the rest of the budget absorbs delayed wake-ups.
      return 4 * static_cast<std::uint64_t>(g.max_degree()) + 1024;
    };
    defs.push_back(std::move(def));
  }

  for (const auto& def : defs) def.validate();
  return defs;
}

std::deque<ProgramDef>& registry() {
  static std::deque<ProgramDef> defs = builtin_programs();
  return defs;
}

std::string known_labels() {
  std::ostringstream os;
  for (const auto& def : registry()) os << " " << def.label;
  return os.str();
}

const ProgramDef* find_def(const std::string& label) {
  for (const auto& def : registry())
    if (def.label == label) return &def;
  return nullptr;
}

}  // namespace

const std::deque<ProgramDef>& all_program_defs() { return registry(); }

std::vector<Program> all_programs() {
  std::vector<Program> programs;
  programs.reserve(registry().size());
  for (const auto& def : registry()) programs.push_back(make_program(def, {}));
  return programs;
}

void register_program(ProgramDef def) {
  def.validate();
  FNR_CHECK_MSG(find_def(def.label) == nullptr,
                "program '" << def.label << "' is already registered");
  registry().push_back(std::move(def));
}

bool has_program(const std::string& label) {
  return find_def(label) != nullptr;
}

Program find_program(const std::string& spec) {
  const auto question = spec.find('?');
  const std::string label = spec.substr(0, question);
  FNR_CHECK_MSG(!label.empty(), "program spec '"
                                    << spec << "': empty label before '?'; "
                                    << "known:" << known_labels());
  const ProgramDef* def = find_def(label);
  FNR_CHECK_MSG(def != nullptr,
                "unknown program '" << label << "'; known:" << known_labels());
  std::map<std::string, double> overrides;
  if (question != std::string::npos) {
    const std::string suffix = spec.substr(question + 1);
    FNR_CHECK_MSG(!suffix.empty(),
                  "program '" << spec << "': empty override suffix after '?'");
    // Manual '&' walk: getline drops a trailing empty token, which used to
    // let "label?key=value&" through unrejected.
    std::size_t start = 0;
    for (;;) {
      const auto amp = suffix.find('&', start);
      const std::string token =
          amp == std::string::npos ? suffix.substr(start)
                                   : suffix.substr(start, amp - start);
      FNR_CHECK_MSG(!token.empty(), "program '"
                                        << spec
                                        << "': empty override (stray '&')");
      const auto eq = token.find('=');
      FNR_CHECK_MSG(eq != std::string::npos && eq > 0 && eq + 1 < token.size(),
                    "program '" << spec << "': override '" << token
                                << "' is not key=value");
      const std::string name = token.substr(0, eq);
      std::ostringstream declared;
      for (const auto& [param, fallback] : def->parameters) {
        (void)fallback;
        declared << " " << param;
      }
      const std::string declared_list =
          def->parameters.empty() ? " (none)" : declared.str();
      FNR_CHECK_MSG(def->parameters.contains(name),
                    "program '" << def->label << "' has no parameter '"
                                << name << "'; declared:" << declared_list);
      FNR_CHECK_MSG(!overrides.contains(name),
                    "program '" << spec << "' repeats parameter '" << name
                                << "'");
      overrides[name] =
          parse_finite_double(token.substr(eq + 1),
                              "program parameter '" + name + "'");
      if (amp == std::string::npos) break;
      start = amp + 1;
    }
  }
  return make_program(*def, std::move(overrides));
}

// --- compatibility -----------------------------------------------------------

bool compatible(const Program& program, const Scenario& scenario) {
  const ProgramCaps& caps = program.def().caps;
  if (scenario.num_agents > 2 && !caps.supports_multi_agent) return false;
  // Any predicate demanding more than a pairwise meeting (all-meet, but
  // also Quorum/Fraction thresholds above 2) needs the rally coordination
  // that supports_gather_all advertises — chance co-location of 3+ free
  // walkers is not a strategy.
  if (scenario.gathering.threshold(scenario.num_agents) > 2 &&
      !caps.supports_gather_all)
    return false;
  if (scenario.placement == PlacementModel::RandomDistinct &&
      caps.needs_shared_neighborhood)
    return false;
  return true;
}

namespace {

bool tight_naming_ok(const ProgramDef& def, const graph::Graph& g) {
  return !def.caps.needs_tight_ids || g.tight_ids();
}

bool completeness_ok(const ProgramDef& def, const graph::Graph& g) {
  return !def.caps.needs_complete_graph ||
         g.min_degree() + 1 == g.num_vertices();
}

}  // namespace

bool runnable_on(const ProgramDef& def, const graph::Graph& g) {
  return tight_naming_ok(def, g) && completeness_ok(def, g);
}

void check_runnable(const ProgramDef& def, const graph::Graph& g) {
  FNR_CHECK_MSG(tight_naming_ok(def, g),
                "Theorem 2 requires tight naming (n' = O(n))");
  FNR_CHECK_MSG(completeness_ok(def, g),
                "program '" << def.label << "' requires a complete graph");
}

void print_program_listing(std::ostream& os) {
  Table table({"program", "capabilities", "paper", "description"});
  for (const auto& def : all_program_defs())
    table.add_row({def.label, def.caps.describe(), def.paper_ref,
                   def.description});
  table.print(os);
}

}  // namespace fnr::scenario
