#include "scenario/run.hpp"

#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "baselines/gather.hpp"
#include "baselines/random_walk.hpp"
#include "core/main_rendezvous.hpp"
#include "core/no_whiteboard.hpp"
#include "sim/scheduler.hpp"

namespace fnr::scenario {

const char* to_string(Program program) noexcept {
  switch (program) {
    case Program::Whiteboard: return "whiteboard";
    case Program::WhiteboardDoubling: return "whiteboard+doubling";
    case Program::NoWhiteboard: return "no-whiteboard";
    case Program::RandomWalk: return "random-walk";
    case Program::ExploreRally: return "explore-rally";
  }
  return "?";
}

const std::vector<Program>& all_programs() {
  static const std::vector<Program> programs = {
      Program::Whiteboard, Program::WhiteboardDoubling, Program::NoWhiteboard,
      Program::RandomWalk, Program::ExploreRally};
  return programs;
}

std::string ScenarioReport::describe() const {
  std::ostringstream os;
  os << run.describe() << " (cap " << round_cap << ")";
  return os.str();
}

namespace {

[[nodiscard]] core::Strategy core_strategy(Program program) {
  switch (program) {
    case Program::Whiteboard: return core::Strategy::Whiteboard;
    case Program::WhiteboardDoubling: return core::Strategy::WhiteboardDoubling;
    case Program::NoWhiteboard: return core::Strategy::NoWhiteboard;
    case Program::RandomWalk:
    case Program::ExploreRally: break;
  }
  FNR_CHECK_MSG(false, "program has no core::Strategy counterpart");
  throw std::logic_error("unreachable");
}

[[nodiscard]] sim::Model model_for(Program program) {
  return program == Program::NoWhiteboard ? sim::Model::no_whiteboards()
                                          : sim::Model::full();
}

/// Builds the k agents for `program` (index 0 = a-program). Each agent gets
/// its own split stream in index order.
[[nodiscard]] std::vector<std::unique_ptr<sim::Agent>> build_agents(
    Program program, std::size_t k, const graph::Graph& g,
    const core::Params& params, Rng& seed_rng) {
  const double delta = static_cast<double>(g.min_degree());
  std::vector<std::unique_ptr<sim::Agent>> agents;
  agents.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Rng rng = seed_rng.split();
    switch (program) {
      case Program::Whiteboard:
      case Program::WhiteboardDoubling: {
        const double known_delta =
            program == Program::WhiteboardDoubling ? -1.0 : delta;
        if (i == 0) {
          agents.push_back(
              std::make_unique<core::WhiteboardAgentA>(params, known_delta,
                                                       rng));
        } else {
          agents.push_back(std::make_unique<core::WhiteboardAgentB>(rng));
        }
        break;
      }
      case Program::NoWhiteboard: {
        if (i == 0) {
          agents.push_back(
              std::make_unique<core::NoWhiteboardAgentA>(params, delta, rng));
        } else {
          agents.push_back(
              std::make_unique<core::NoWhiteboardAgentB>(params, delta, rng));
        }
        break;
      }
      case Program::RandomWalk:
        agents.push_back(std::make_unique<baselines::RandomWalkAgent>(rng));
        break;
      case Program::ExploreRally:
        agents.push_back(std::make_unique<baselines::GatherAtMinAgent>());
        break;
    }
  }
  return agents;
}

}  // namespace

std::uint64_t auto_round_cap(const graph::Graph& g, const Scenario& scenario,
                             Program program, const core::Params& params) {
  std::uint64_t cap = 0;
  if (program == Program::RandomWalk) {
    // Two independent lazy walks meet in O~(n) on the dense families and
    // O(n log n)-ish on tori/small worlds; a wide log-linear budget keeps
    // failures meaningful without unbounded trials.
    const auto n = static_cast<double>(g.num_vertices());
    cap = static_cast<std::uint64_t>(32.0 * n * (std::log2(n) + 1.0)) + 1024;
  } else if (program == Program::ExploreRally) {
    // DFS walk <= 2(n-1) moves plus a rally route <= diameter < n.
    cap = 4 * static_cast<std::uint64_t>(g.num_vertices()) + 1024;
  } else {
    cap = core::auto_round_cap(g, core_strategy(program), params);
  }
  // Gathering everyone is a sequence of pairwise coalescences.
  if (scenario.gathering == sim::Gathering::All)
    cap *= static_cast<std::uint64_t>(scenario.num_agents - 1);
  // Sleeping rounds are dead rounds; extend the budget by the bound.
  return cap + scenario.max_delay;
}

ScenarioReport run_scenario(const Scenario& scenario, Program program,
                            const graph::Graph& g,
                            const sim::ScenarioPlacement& placement,
                            const ScenarioOptions& options) {
  sim::SchedulerScratch scratch;
  return run_scenario(scenario, program, g, placement, options, scratch);
}

ScenarioReport run_scenario(const Scenario& scenario, Program program,
                            const graph::Graph& g,
                            const sim::ScenarioPlacement& placement,
                            const ScenarioOptions& options,
                            sim::SchedulerScratch& scratch) {
  scenario.validate();
  FNR_CHECK_MSG(placement.num_agents() == scenario.num_agents,
                "placement has " << placement.num_agents()
                                 << " starts for a " << scenario.num_agents
                                 << "-agent scenario");
  FNR_CHECK_MSG(g.min_degree() >= 1, "graph must have no isolated vertices");
  if (program == Program::NoWhiteboard) {
    FNR_CHECK_MSG(g.tight_ids(),
                  "Theorem 2 requires tight naming (n' = O(n))");
  }

  ScenarioReport report;
  report.round_cap =
      options.max_rounds > 0
          ? options.max_rounds
          : auto_round_cap(g, scenario, program, options.params);

  Rng seed_rng(options.seed);
  auto agents = build_agents(program, scenario.num_agents, g, options.params,
                             seed_rng);
  std::vector<sim::Agent*> pointers;
  pointers.reserve(agents.size());
  for (const auto& agent : agents) pointers.push_back(agent.get());

  sim::Scheduler& scheduler = scratch.scheduler_for(g, model_for(program));
  report.run = scheduler.run_scenario(pointers, placement, scenario.gathering,
                                      report.round_cap);
  return report;
}

runner::TrialOutcome to_outcome(std::uint64_t trial, std::uint64_t seed,
                                const sim::ScenarioRunResult& run) {
  runner::TrialOutcome out;
  out.trial = trial;
  out.seed = seed;
  out.met = run.met;
  out.meeting_round = run.meeting_round;
  out.rounds = run.rounds;
  out.moves_a = run.agents.empty() ? 0 : run.agents[0].moves;
  out.moves_b = 0;
  for (std::size_t i = 1; i < run.agents.size(); ++i)
    out.moves_b += run.agents[i].moves;
  out.whiteboard_marks = run.whiteboard_writes;
  return out;
}

runner::TrialAccumulator run_scenario_trials(
    const Scenario& scenario, Program program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner) {
  // One SchedulerScratch per worker keeps the batch loop on warm arenas.
  return trial_runner.run_with_scratch<sim::SchedulerScratch>(
      n_trials, options.seed,
      [&](sim::SchedulerScratch& scratch, std::uint64_t trial,
          std::uint64_t seed) {
        // Stream 11 draws the instance; the agents split their own streams
        // from the bare seed inside run_scenario. Both derive only from the
        // per-trial split seed — bit-identical across thread counts.
        Rng instance_rng(seed, /*stream=*/11);
        const auto placement = draw_instance(scenario, g, instance_rng);
        ScenarioOptions trial_options = options;
        trial_options.seed = seed;
        const auto report = run_scenario(scenario, program, g, placement,
                                         trial_options, scratch);
        return to_outcome(trial, seed, report.run);
      });
}

}  // namespace fnr::scenario
