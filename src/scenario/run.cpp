#include "scenario/run.hpp"

#include <deque>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/batch_scheduler.hpp"
#include "sim/scheduler.hpp"

namespace fnr::scenario {

std::string ScenarioReport::describe() const {
  std::ostringstream os;
  os << run.describe() << " (cap " << round_cap << ")";
  return os.str();
}

namespace {

/// Builds the k agents for `program` (index 0 = seeker role). Each agent
/// gets its own split stream in index order — the split happens for every
/// slot whether or not the factory consumes it, so deterministic and
/// randomized programs share one seed schedule.
[[nodiscard]] std::vector<std::unique_ptr<sim::Agent>> build_agents(
    const Program& program, std::size_t k, const graph::Graph& g,
    const core::Params& params, Rng& seed_rng) {
  const ProgramDef& def = program.def();
  std::vector<std::unique_ptr<sim::Agent>> agents;
  agents.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    AgentBuild build{g, params, program, i, k, seed_rng.split()};
    const AgentFactory& factory =
        def.symmetric ? def.symmetric : (i == 0 ? def.seeker : def.marker);
    agents.push_back(factory(build));
    FNR_CHECK_MSG(agents.back() != nullptr,
                  "program '" << def.label << "': factory built no agent "
                              << "for slot " << i);
  }
  return agents;
}

}  // namespace

std::uint64_t auto_round_cap(const graph::Graph& g, const Scenario& scenario,
                             const Program& program,
                             const core::Params& params) {
  std::uint64_t cap = program.def().round_cap(g, params);
  // Collecting t >= 3 agents on one vertex is a sequence of pairwise
  // coalescences; scale the pairwise cap by the threshold size. (Under
  // Gathering::All the threshold is k, reproducing the original k-1
  // factor byte-for-byte; any-pair and Quorum(2) stay unscaled.)
  const std::uint64_t threshold =
      scenario.gathering.threshold(scenario.num_agents);
  if (threshold > 2) cap *= (threshold - 1);
  // Sleeping rounds are dead rounds; extend the budget by the bound.
  return cap + scenario.max_delay;
}

ScenarioReport run_scenario(const Scenario& scenario, const Program& program,
                            const graph::Graph& g,
                            const sim::ScenarioPlacement& placement,
                            const ScenarioOptions& options) {
  sim::SchedulerScratch scratch;
  return run_scenario(scenario, program, g, placement, options, scratch);
}

ScenarioReport run_scenario(const Scenario& scenario, const Program& program,
                            const graph::Graph& g,
                            const sim::ScenarioPlacement& placement,
                            const ScenarioOptions& options,
                            sim::SchedulerScratch& scratch) {
  scenario.validate();
  const ProgramDef& def = program.def();
  FNR_CHECK_MSG(placement.num_agents() == scenario.num_agents,
                "placement has " << placement.num_agents()
                                 << " starts for a " << scenario.num_agents
                                 << "-agent scenario");
  FNR_CHECK_MSG(g.min_degree() >= 1, "graph must have no isolated vertices");
  check_runnable(def, g);

  ScenarioReport report;
  report.round_cap =
      options.max_rounds > 0
          ? options.max_rounds
          : auto_round_cap(g, scenario, program, options.params);

  Rng seed_rng(options.seed);
  auto agents = build_agents(program, scenario.num_agents, g, options.params,
                             seed_rng);
  std::vector<sim::Agent*> pointers;
  pointers.reserve(agents.size());
  for (const auto& agent : agents) pointers.push_back(agent.get());

  sim::Scheduler& scheduler = scratch.scheduler_for(g, def.model);
  scheduler.set_meeting_detection(options.detection);
  if (!options.fault.active()) {
    report.run = scheduler.run_scenario(pointers, placement,
                                        scenario.gathering, report.round_cap);
    return report;
  }

  // Faulty run: the session and the reviver stream split off seed_rng only
  // now, after the k agent builds, so the agents' own streams match the
  // fault-free schedule exactly. Crash revivals re-run the slot's factory
  // with fresh splits in revival order (single-threaded inside one run, so
  // the order — and hence the replay — is deterministic).
  fault::FaultSession session(options.fault, seed_rng.split());
  Rng revive_rng = seed_rng.split();
  std::deque<std::unique_ptr<sim::Agent>> revived;  // stable addresses
  session.revive = [&](std::size_t slot) -> sim::Agent* {
    AgentBuild build{g,    options.params,      program,
                     slot, scenario.num_agents, revive_rng.split()};
    const AgentFactory& factory =
        def.symmetric ? def.symmetric : (slot == 0 ? def.seeker : def.marker);
    revived.push_back(factory(build));
    return revived.back().get();
  };

  // The scratch's scheduler outlives this call; never leave it pointing at
  // the stack-local session (even when the run throws).
  struct SessionGuard {
    sim::Scheduler& scheduler;
    ~SessionGuard() { scheduler.set_fault_session(nullptr); }
  } guard{scheduler};
  scheduler.set_fault_session(&session);
  report.run = scheduler.run_scenario(pointers, placement, scenario.gathering,
                                      report.round_cap);
  return report;
}

runner::TrialOutcome to_outcome(std::uint64_t trial, std::uint64_t seed,
                                const sim::ScenarioRunResult& run) {
  runner::TrialOutcome out;
  out.trial = trial;
  out.seed = seed;
  out.met = run.met;
  out.meeting_round = run.meeting_round;
  out.gathered_count = run.gathered_count;
  out.rounds = run.rounds;
  out.moves_a = run.agents.empty() ? 0 : run.agents[0].moves;
  out.moves_b = 0;
  for (std::size_t i = 1; i < run.agents.size(); ++i)
    out.moves_b += run.agents[i].moves;
  out.whiteboard_marks = run.whiteboard_writes;
  out.faults = run.faults;
  return out;
}

runner::TrialAccumulator run_scenario_trials(
    const Scenario& scenario, const Program& program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner) {
  return run_scenario_trial_span(scenario, program, g, options, 0, n_trials,
                                 trial_runner, /*batch_size=*/0);
}

runner::TrialAccumulator run_scenario_trials(
    const Scenario& scenario, const Program& program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner, std::uint64_t batch_size) {
  return run_scenario_trial_span(scenario, program, g, options, 0, n_trials,
                                 trial_runner, batch_size);
}

runner::TrialAccumulator run_scenario_trial_span(
    const Scenario& scenario, const Program& program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t first_trial,
    std::uint64_t n_trials, const runner::TrialRunner& trial_runner,
    std::uint64_t batch_size) {
  // Faulty cells keep the scalar oracle: fault sites draw from the session
  // stream in global round order, which a lock-step batch would reorder.
  // (Per-trial fault streams split off the trial seed, so spans are safe.)
  if (batch_size <= 1 || options.fault.active()) {
    // One SchedulerScratch per worker keeps the batch loop on warm arenas.
    return trial_runner.run_span_with_scratch<sim::SchedulerScratch>(
        first_trial, n_trials, options.seed,
        [&](sim::SchedulerScratch& scratch, std::uint64_t trial,
            std::uint64_t seed) {
          // Stream 11 draws the instance; the agents split their own streams
          // from the bare seed inside run_scenario. Both derive only from the
          // per-trial split seed — bit-identical across thread counts.
          Rng instance_rng(seed, /*stream=*/11);
          const auto placement = draw_instance(scenario, g, instance_rng);
          ScenarioOptions trial_options = options;
          trial_options.seed = seed;
          const auto report = run_scenario(scenario, program, g, placement,
                                           trial_options, scratch);
          return to_outcome(trial, seed, report.run);
        });
  }

  // Trial-invariant validation and the round cap, hoisted out of the loop
  // (the scalar path re-derives them per trial with identical results).
  scenario.validate();
  const ProgramDef& def = program.def();
  FNR_CHECK_MSG(g.min_degree() >= 1, "graph must have no isolated vertices");
  check_runnable(def, g);
  const std::uint64_t cap =
      options.max_rounds > 0
          ? options.max_rounds
          : auto_round_cap(g, scenario, program, options.params);

  return trial_runner.run_span_batched<sim::BatchSchedulerScratch>(
      first_trial, n_trials, options.seed, batch_size,
      [&](sim::BatchSchedulerScratch& scratch, std::uint64_t first,
          std::uint64_t count, runner::TrialOutcome* outs) {
        sim::BatchScheduler& kernel = scratch.kernel_for(g, def.model);
        kernel.begin_batch(scenario.gathering);
        // One agent team per staged trial, alive until the kernel ran.
        std::vector<std::vector<std::unique_ptr<sim::Agent>>> teams;
        teams.reserve(count);
        std::vector<sim::Agent*> pointers;
        for (std::uint64_t j = 0; j < count; ++j) {
          const std::uint64_t seed =
              runner::trial_seed(options.seed, first + j);
          // Stream discipline identical to the scalar trial lambda: stream
          // 11 draws the instance, the agent builds split the bare seed in
          // slot order.
          Rng instance_rng(seed, /*stream=*/11);
          const auto placement = draw_instance(scenario, g, instance_rng);
          FNR_CHECK_MSG(placement.num_agents() == scenario.num_agents,
                        "placement has " << placement.num_agents()
                                         << " starts for a "
                                         << scenario.num_agents
                                         << "-agent scenario");
          Rng seed_rng(seed);
          teams.push_back(build_agents(program, scenario.num_agents, g,
                                       options.params, seed_rng));
          pointers.clear();
          for (const auto& agent : teams.back())
            pointers.push_back(agent.get());
          kernel.add_trial(pointers, placement, cap);
        }
        const auto results = kernel.run();
        for (std::uint64_t j = 0; j < count; ++j)
          outs[j] = to_outcome(first + j,
                               runner::trial_seed(options.seed, first + j),
                               results[j]);
      });
}

}  // namespace fnr::scenario
