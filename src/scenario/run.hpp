// Scenario execution: strategy programs lifted to k agents, wired through
// the Scheduler's scenario engine and the parallel TrialRunner.
//
// The paper's asymmetric role split carries over: agent 0 runs the
// a-program (seeker), agents 1..k-1 run the b-program (markers / waiters).
// For symmetric programs (random walk) every agent runs the same code.
// Strategies are expected to *tolerate* desynchronized peers — a sleeping
// partner just means probes find no marks yet — but their guarantees are
// only proved for the synchronous two-agent instance; measuring how far
// each degrades under delay and crowding is the point of the scenario
// benches.
#pragma once

#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "core/rendezvous.hpp"
#include "runner/trial_runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/metrics.hpp"

namespace fnr::scenario {

/// The per-agent program family a scenario runs. Extends core::Strategy
/// with baselines that stay meaningful for k agents and non-adjacent
/// placements.
enum class Program {
  Whiteboard,          ///< Theorem 1 roles: one seeker, k-1 markers
  WhiteboardDoubling,  ///< same with δ estimated by doubling
  NoWhiteboard,        ///< Theorem 2 roles (tight naming required)
  RandomWalk,          ///< every agent an independent lazy random walk
  ExploreRally,        ///< DFS the graph, rally at the minimum vertex ID —
                       ///< the coordination that makes Gathering::All
                       ///< reachable (O(n) rounds, deterministic)
};

/// Stable label for tables and CSV/JSON cell names.
[[nodiscard]] const char* to_string(Program program) noexcept;

/// All programs, in a stable sweep order.
[[nodiscard]] const std::vector<Program>& all_programs();

struct ScenarioOptions {
  core::Params params = core::Params::practical();
  /// Seed for placement-independent agent randomness (streams are split per
  /// agent in index order).
  std::uint64_t seed = 1;
  /// 0 → auto cap (strategy cap plus the scenario's delay bound).
  std::uint64_t max_rounds = 0;
};

/// Outcome of one scenario instance plus the cap it ran under.
struct ScenarioReport {
  sim::ScenarioRunResult run;   ///< the scheduler's full result
  std::uint64_t round_cap = 0;  ///< budget the run was given

  /// One-line human-readable outcome summary (for traces and examples).
  [[nodiscard]] std::string describe() const;
};

/// Generous failure cap for `program` under `scenario` on this graph.
[[nodiscard]] std::uint64_t auto_round_cap(const graph::Graph& g,
                                           const Scenario& scenario,
                                           Program program,
                                           const core::Params& params);

/// Runs one concrete instance (starts + delays drawn elsewhere, e.g. via
/// draw_instance). Throws CheckError when the graph/model cannot satisfy
/// the program's assumptions (e.g. NoWhiteboard without tight naming).
[[nodiscard]] ScenarioReport run_scenario(const Scenario& scenario,
                                          Program program,
                                          const graph::Graph& g,
                                          const sim::ScenarioPlacement& placement,
                                          const ScenarioOptions& options);

/// Same, executing on the caller's scheduler scratch (one per worker in
/// batch loops, so repeated trials reuse a warm arena). Bit-identical to
/// the scratch-free overload.
[[nodiscard]] ScenarioReport run_scenario(const Scenario& scenario,
                                          Program program,
                                          const graph::Graph& g,
                                          const sim::ScenarioPlacement& placement,
                                          const ScenarioOptions& options,
                                          sim::SchedulerScratch& scratch);

/// Lifts a scenario run into the accumulator's outcome shape: moves_a is
/// agent 0's moves, moves_b sums agents 1..k-1, whiteboard_marks is the
/// run's total whiteboard writes (markers are the only writers).
[[nodiscard]] runner::TrialOutcome to_outcome(
    std::uint64_t trial, std::uint64_t seed,
    const sim::ScenarioRunResult& run);

/// Batch entry point: n_trials independent instances of (scenario, program)
/// through the parallel TrialRunner. Trial t draws its placement, delays,
/// and agent randomness from the split seed trial_seed(options.seed, t), so
/// the aggregate is bit-identical no matter how many threads ran the batch.
[[nodiscard]] runner::TrialAccumulator run_scenario_trials(
    const Scenario& scenario, Program program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner);

}  // namespace fnr::scenario
