// Scenario execution: registry programs lifted to k agents, wired through
// the Scheduler's scenario engine and the parallel TrialRunner.
//
// The paper's asymmetric role split carries over: agent 0 runs the
// program's seeker factory, agents 1..k-1 its marker factory (symmetric
// programs build every agent from one factory). Which programs exist, what
// they need from the world, and how they staff agents lives in the program
// registry (program_registry.hpp); this layer only resolves a Program
// handle against a Scenario and a Graph. Strategies are expected to
// *tolerate* desynchronized peers — a sleeping partner just means probes
// find no marks yet — but their guarantees are only proved for the
// synchronous two-agent instance; measuring how far each degrades under
// delay and crowding is the point of the scenario benches.
#pragma once

#include <cstdint>
#include <string>

#include "core/params.hpp"
#include "core/rendezvous.hpp"
#include "fault/fault.hpp"
#include "runner/trial_runner.hpp"
#include "scenario/program_registry.hpp"
#include "scenario/scenario.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"

namespace fnr::scenario {

struct ScenarioOptions {
  core::Params params = core::Params::practical();
  /// Seed for placement-independent agent randomness (streams are split per
  /// agent in index order).
  std::uint64_t seed = 1;
  /// 0 → auto cap (strategy cap plus the scenario's delay bound).
  std::uint64_t max_rounds = 0;
  /// Fault plan for the run (default: inactive — the reliable substrate).
  /// When active, each run builds a FaultSession from a split of the run
  /// seed, drawn *after* the agent streams, so the fault-free seed schedule
  /// — and therefore every fault-free result — is byte-identical to a
  /// build without the fault layer.
  fault::FaultPlan fault;
  /// How the scheduler evaluates the gathering predicate (Auto = pairwise
  /// at small k, occupancy counting above the cutover). Modes are
  /// byte-identical in every observable — a throughput/testing lever only.
  sim::MeetingDetection detection = sim::MeetingDetection::Auto;
};

/// Outcome of one scenario instance plus the cap it ran under.
struct ScenarioReport {
  sim::ScenarioRunResult run;   ///< the scheduler's full result
  std::uint64_t round_cap = 0;  ///< budget the run was given

  /// One-line human-readable outcome summary (for traces and examples).
  [[nodiscard]] std::string describe() const;
};

/// Generous failure cap for `program` under `scenario` on this graph: the
/// program's registered cap, scaled for Gathering::All (a sequence of
/// pairwise coalescences) and extended by the scenario's delay bound.
[[nodiscard]] std::uint64_t auto_round_cap(const graph::Graph& g,
                                           const Scenario& scenario,
                                           const Program& program,
                                           const core::Params& params);

/// Runs one concrete instance (starts + delays drawn elsewhere, e.g. via
/// draw_instance). Throws CheckError when the graph/model cannot satisfy
/// the program's registered requirements (e.g. no-whiteboard without tight
/// naming, anderson-weber off a complete graph). Capability *compatibility*
/// (compatible(program, scenario)) is deliberately not enforced here —
/// mismatched runs measure degradation; grids skip them instead.
[[nodiscard]] ScenarioReport run_scenario(const Scenario& scenario,
                                          const Program& program,
                                          const graph::Graph& g,
                                          const sim::ScenarioPlacement& placement,
                                          const ScenarioOptions& options);

/// Same, executing on the caller's scheduler scratch (one per worker in
/// batch loops, so repeated trials reuse a warm arena). Bit-identical to
/// the scratch-free overload.
[[nodiscard]] ScenarioReport run_scenario(const Scenario& scenario,
                                          const Program& program,
                                          const graph::Graph& g,
                                          const sim::ScenarioPlacement& placement,
                                          const ScenarioOptions& options,
                                          sim::SchedulerScratch& scratch);

/// Lifts a scenario run into the accumulator's outcome shape: moves_a is
/// agent 0's moves, moves_b sums agents 1..k-1, whiteboard_marks is the
/// run's total whiteboard writes (markers are the only writers).
[[nodiscard]] runner::TrialOutcome to_outcome(
    std::uint64_t trial, std::uint64_t seed,
    const sim::ScenarioRunResult& run);

/// Batch entry point: n_trials independent instances of (scenario, program)
/// through the parallel TrialRunner. Trial t draws its placement, delays,
/// and agent randomness from the split seed trial_seed(options.seed, t), so
/// the aggregate is bit-identical no matter how many threads ran the batch.
[[nodiscard]] runner::TrialAccumulator run_scenario_trials(
    const Scenario& scenario, const Program& program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner);

/// Same batch, executed `batch_size` trials at a time on the lock-step SoA
/// kernel (sim::BatchScheduler). Seeds, placements, and agent builds follow
/// the scalar schedule exactly and the kernel is bit-exact against the
/// scalar Scheduler, so aggregates are byte-identical to the overload
/// above. Falls back to the scalar path when batch_size <= 1 or the
/// options carry an active fault plan (fault sites consume RNG in round
/// order, which lock-stepping would re-interleave).
[[nodiscard]] runner::TrialAccumulator run_scenario_trials(
    const Scenario& scenario, const Program& program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner, std::uint64_t batch_size);

/// Span entry: runs *global* trials [first_trial, first_trial + n_trials)
/// of the cell whose base seed is options.seed. Trial t (global index)
/// draws everything from trial_seed(options.seed, t) — the same seed it
/// gets in a full-range run — so a cell split into contiguous spans and
/// merged through TrialAccumulator::merge aggregates bit-identically to
/// one unsharded run (the campaign executor's monster-cell path). Faulty
/// cells shard safely too: fault draws come from per-trial split streams.
/// Both run_scenario_trials overloads are the first_trial = 0 case.
[[nodiscard]] runner::TrialAccumulator run_scenario_trial_span(
    const Scenario& scenario, const Program& program, const graph::Graph& g,
    const ScenarioOptions& options, std::uint64_t first_trial,
    std::uint64_t n_trials, const runner::TrialRunner& trial_runner,
    std::uint64_t batch_size);

}  // namespace fnr::scenario
