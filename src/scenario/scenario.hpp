// Scenario descriptors and registry.
//
// The paper analyzes exactly one scenario: two agents, adjacent starts,
// synchronous wake-up, rendezvous = any co-location. The broader rendezvous
// literature (Fast Rendezvous with Advice; deterministic rendezvous with
// delayed starts) varies each of those axes. A Scenario pins one point in
// that space — agent count, placement model, wake-delay model, gathering
// predicate — and the registry makes the whole matrix enumerable by the
// TrialRunner, the benches, and the examples.
//
// A Scenario is a static descriptor; draw_instance materializes one concrete
// trial (starts + delays) from it deterministically given an Rng, so trial
// batches stay bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace fnr::scenario {

/// How agents' start vertices are drawn.
enum class PlacementModel {
  /// Uniform adjacent pair — the paper's instance class I_1 (k = 2 only).
  AdjacentPair,
  /// A uniform vertex v with deg(v) + 1 >= k, then k distinct members of
  /// N+(v): the k-agent generalization of "neighborhood" rendezvous.
  NeighborhoodCluster,
  /// k distinct uniform vertices anywhere (general gathering).
  RandomDistinct,
};

/// How wake-up delays are drawn (delays are in rounds; time starts when the
/// first agent wakes).
enum class DelayModel {
  None,           ///< synchronous start (the paper's model)
  RandomUniform,  ///< each delay uniform in [0, max_delay], then shifted so
                  ///< the earliest riser wakes at 0
  Adversarial,    ///< agent 0 wakes at 0, everyone else sleeps max_delay
                  ///< rounds (the worst staggering under the bound)
};

/// Stable label for tables and scenario descriptions.
[[nodiscard]] const char* to_string(PlacementModel placement) noexcept;
/// Stable label for tables and scenario descriptions.
[[nodiscard]] const char* to_string(DelayModel delay) noexcept;

/// One point in scenario space. Immutable once registered.
struct Scenario {
  std::string name;     ///< registry key, unique
  std::string summary;  ///< one line for tables / --list output
  std::size_t num_agents = 2;   ///< k, at least 2
  PlacementModel placement = PlacementModel::AdjacentPair;  ///< start draw
  DelayModel delay = DelayModel::None;  ///< wake-delay draw
  std::uint64_t max_delay = 0;  ///< bound D on wake delays (rounds)
  sim::Gathering gathering = sim::Gathering::AnyPair;  ///< success predicate

  /// Throws CheckError on inconsistent descriptors (k < 2, AdjacentPair
  /// with k != 2, a delay model with max_delay = 0, ...).
  void validate() const;

  /// "k=3 cluster, delay<=128 (random), any-pair" — for table headers.
  [[nodiscard]] std::string describe() const;
};

// --- registry ---------------------------------------------------------------

/// The built-in scenarios plus everything added via register_scenario, in
/// registration order. The first entry is "sync-pair", the paper's model.
/// (A deque so register_scenario never invalidates references handed out
/// by this function or find_scenario.)
[[nodiscard]] const std::deque<Scenario>& all_scenarios();

/// Adds a scenario to the registry. Validates it; throws CheckError on a
/// duplicate name.
void register_scenario(Scenario scenario);

[[nodiscard]] bool has_scenario(const std::string& name);

/// Throws CheckError when the name is unknown (lists known names).
[[nodiscard]] const Scenario& find_scenario(const std::string& name);

/// Markdown-ish table of every registered scenario (name, shape, summary)
/// for the --list-scenarios CLIs.
void print_scenario_listing(std::ostream& os);

// --- instance materialization -----------------------------------------------

/// Draws one concrete trial (starts + wake delays) for `scenario` on `g`.
/// Deterministic given the Rng state: placement is drawn first, delays
/// second. Throws CheckError when the graph cannot host the scenario (e.g.
/// no vertex has a closed neighborhood of size num_agents).
[[nodiscard]] sim::ScenarioPlacement draw_instance(const Scenario& scenario,
                                                   const graph::Graph& g,
                                                   Rng& rng);

}  // namespace fnr::scenario
