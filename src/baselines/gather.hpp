// Explore-then-rally gathering baseline.
//
// The classic way k >= 2 agents with unique vertex IDs gather without any
// pre-agreement: each agent DFS-explores the graph (KT1 makes the map
// learnable — every visited vertex reveals its neighbors' IDs), then walks
// to the smallest vertex ID it has seen and halts there. On a connected
// graph every agent learns the same minimum, so all agents end on one
// vertex within O(n) rounds — the coordination the independent random walks
// lack (k-way co-location of walkers has probability ~n^{1-k} per round).
// Symmetric: every agent runs the same program, any placement, any k.
#pragma once

#include <unordered_map>
#include <vector>

#include "sim/scripted_agent.hpp"

namespace fnr::baselines {

class GatherAtMinAgent final : public sim::ScriptedAgent {
 public:
  GatherAtMinAgent() = default;

  /// True once the agent stands on the rally vertex with nothing to do.
  [[nodiscard]] bool arrived() const noexcept { return arrived_; }
  /// Lets single-agent runs stop at the rally instead of burning the cap.
  [[nodiscard]] bool halted() const override { return arrived_; }
  [[nodiscard]] std::size_t visited_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t memory_words() const override;

 protected:
  void on_idle(const sim::View& view) override;

 private:
  /// BFS route over the learned map from `from` to `to` (exclusive of
  /// `from`, inclusive of `to`).
  [[nodiscard]] std::vector<graph::VertexId> route(graph::VertexId from,
                                                   graph::VertexId to) const;

  bool init_ = false;
  bool rallying_ = false;
  bool arrived_ = false;
  graph::VertexId root_ = 0;
  graph::VertexId min_seen_ = 0;
  // Words held by adjacency_, maintained on insert: the scheduler polls
  // memory_words() every round, so recomputing it by walking the learned
  // map would cost O(m) per round (O(nm) per run — it dominated E13).
  std::size_t adjacency_words_ = 0;
  std::unordered_map<graph::VertexId, std::vector<graph::VertexId>> adjacency_;
  std::unordered_map<graph::VertexId, graph::VertexId> parent_;
  std::unordered_map<graph::VertexId, std::size_t> next_child_;
};

}  // namespace fnr::baselines
