#include "baselines/anderson_weber.hpp"

#include "util/check.hpp"

namespace fnr::baselines {

namespace {

/// Uniform member of N(here) on a complete graph (every other vertex).
std::size_t uniform_port(const sim::View& view, Rng& rng) {
  FNR_CHECK_MSG(view.degree() + 1 == view.num_vertices(),
                "Anderson-Weber baseline requires a complete graph");
  return rng.below(view.degree());
}

}  // namespace

sim::Action AndersonWeberAgentA::step(const sim::View& view) {
  if (!init_) {
    home_ = view.here();
    init_ = true;
  }
  if (sitting_) return sim::Action::stay();
  // Read here; if marked, walk to b's start and camp.
  if (const auto mark = view.whiteboard(); mark.has_value()) {
    if (*mark == view.here()) {
      sitting_ = true;  // already standing on v₀ᵇ
      return sim::Action::stay();
    }
    sitting_ = true;
    return sim::Action::move(view.port_of(*mark));
  }
  return sim::Action::move(uniform_port(view, rng_));
}

sim::Action AndersonWeberAgentB::step(const sim::View& view) {
  if (!init_) {
    home_ = view.here();
    init_ = true;
  }
  if (view.here() == home_) {
    // Head to a uniform random vertex to mark.
    return sim::Action::move(uniform_port(view, rng_));
  }
  // Stamp it and return home so a camping partner can be met.
  sim::Action action;
  action.whiteboard_write = home_;
  action.move_port = view.port_of(home_);
  return action;
}

}  // namespace fnr::baselines
