#include "baselines/wait_and_sweep.hpp"

#include "util/check.hpp"

namespace fnr::baselines {

sim::Action SweepAgent::step(const sim::View& view) {
  if (outbound_done_) {
    // Standing on a neighbor of home: backtrack through the arrival port.
    outbound_done_ = false;
    const auto back = view.arrival_port();
    FNR_CHECK_MSG(back.has_value(), "sweep expected to have just moved");
    return sim::Action::move(*back);
  }
  if (next_port_ >= view.degree()) {
    // Swept everything without meeting; with a waiting partner at distance 1
    // this is unreachable. Halt in place (the run will hit its cap).
    return sim::Action::stay();
  }
  outbound_done_ = true;
  return sim::Action::move(next_port_++);
}

}  // namespace fnr::baselines
