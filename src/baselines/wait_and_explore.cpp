#include "baselines/wait_and_explore.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fnr::baselines {

sim::Action ExploreAgent::step(const sim::View& view) {
  if (finished_) return sim::Action::stay();
  if (path_.empty()) {
    path_.push_back(view.here());
    visited_.insert(view.here());
  }
  FNR_ASSERT(path_.back() == view.here());

  // Descend to the smallest-ID unvisited neighbor, if any.
  const auto& neighbors = view.neighbor_ids();
  graph::VertexId best = 0;
  bool found = false;
  for (const auto id : neighbors) {
    if (visited_.contains(id)) continue;
    if (!found || id < best) {
      best = id;
      found = true;
    }
  }
  if (found) {
    visited_.insert(best);
    path_.push_back(best);
    return sim::Action::move(view.port_of(best));
  }
  // Exhausted here: backtrack.
  path_.pop_back();
  if (path_.empty()) {
    finished_ = true;
    return sim::Action::stay();
  }
  return sim::Action::move(view.port_of(path_.back()));
}

}  // namespace fnr::baselines
