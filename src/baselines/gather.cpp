#include "baselines/gather.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace fnr::baselines {

void GatherAtMinAgent::on_idle(const sim::View& view) {
  const graph::VertexId here = view.here();
  if (!init_) {
    root_ = here;
    min_seen_ = here;
    parent_[here] = here;
    init_ = true;
  }
  if (arrived_) return;  // camped on the rally vertex

  if (!rallying_) {
    if (!adjacency_.contains(here)) {
      adjacency_[here] = view.neighbor_ids();
      adjacency_words_ += 1 + view.neighbor_ids().size();
      min_seen_ = std::min(min_seen_, here);
    }
    // Resume this vertex's child scan where it left off (keeps the whole
    // DFS O(m) bookkeeping instead of O(sum deg^2)).
    const auto& nbrs = adjacency_[here];
    std::size_t& cursor = next_child_[here];
    while (cursor < nbrs.size()) {
      const graph::VertexId u = nbrs[cursor++];
      if (parent_.contains(u)) continue;
      parent_[u] = here;
      plan_move(u);
      return;
    }
    if (here != root_) {
      plan_move(parent_.at(here));
      return;
    }
    // DFS spent and we are back at the root: the map is complete for the
    // whole component. Rally at the smallest ID seen.
    rallying_ = true;
    if (here == min_seen_) {
      arrived_ = true;
      return;
    }
    plan_route(route(here, min_seen_));
    return;
  }
  // Route consumed: we stand on the rally vertex.
  FNR_ASSERT(here == min_seen_);
  arrived_ = true;
}

std::vector<graph::VertexId> GatherAtMinAgent::route(graph::VertexId from,
                                                     graph::VertexId to) const {
  std::unordered_map<graph::VertexId, graph::VertexId> prev;
  std::deque<graph::VertexId> frontier{from};
  prev[from] = from;
  while (!frontier.empty() && !prev.contains(to)) {
    const graph::VertexId v = frontier.front();
    frontier.pop_front();
    const auto it = adjacency_.find(v);
    if (it == adjacency_.end()) continue;  // neighbor seen but never visited
    for (const graph::VertexId u : it->second) {
      if (prev.contains(u)) continue;
      prev[u] = v;
      frontier.push_back(u);
    }
  }
  FNR_CHECK_MSG(prev.contains(to),
                "rally vertex " << to << " unreachable in the learned map");
  std::vector<graph::VertexId> hops;
  for (graph::VertexId v = to; v != from; v = prev.at(v)) hops.push_back(v);
  std::reverse(hops.begin(), hops.end());
  return hops;
}

std::size_t GatherAtMinAgent::memory_words() const {
  return sim::ScriptedAgent::memory_words() + 4 + adjacency_words_ +
         2 * parent_.size() + 2 * next_child_.size();
}

}  // namespace fnr::baselines
