// Anderson–Weber-style rendezvous on complete graphs — the paper's closest
// prior work ([6], §1.3): O(√n) expected rounds using whiteboards.
//
// With vertex IDs available our rendition is the natural asymmetric variant:
// agent b repeatedly writes its start ID on uniform random vertices, agent a
// repeatedly reads uniform random vertices; a birthday-paradox collision
// happens after Θ(√n) probes and then a walks to b's start. The paper's
// Main-Rendezvous degenerates to exactly this when Tᵃ = V, so this baseline
// doubles as the "complete graph" sanity anchor for Theorem 1.
// Only valid on complete graphs (every vertex is a neighbor).
#pragma once

#include "sim/view.hpp"
#include "util/rng.hpp"

namespace fnr::baselines {

class AndersonWeberAgentA final : public sim::Agent {
 public:
  explicit AndersonWeberAgentA(Rng rng) : rng_(rng) {}
  sim::Action step(const sim::View& view) override;
  [[nodiscard]] std::size_t memory_words() const override { return 4; }

 private:
  Rng rng_;
  bool init_ = false;
  graph::VertexId home_ = 0;
  bool sitting_ = false;
};

class AndersonWeberAgentB final : public sim::Agent {
 public:
  explicit AndersonWeberAgentB(Rng rng) : rng_(rng) {}
  sim::Action step(const sim::View& view) override;
  [[nodiscard]] std::size_t memory_words() const override { return 2; }

 private:
  Rng rng_;
  bool init_ = false;
  graph::VertexId home_ = 0;
};

}  // namespace fnr::baselines
