// Random-walk meeting baseline: both agents take independent uniform random
// steps every round (the classic "meeting time" setting of Bshouty et al. /
// Tetali-Winkler cited in §1.3). Needs only port numbers.
#pragma once

#include "sim/view.hpp"
#include "util/rng.hpp"

namespace fnr::baselines {

class RandomWalkAgent final : public sim::Agent {
 public:
  /// lazy_probability: chance to stay put a round (a lazy walk avoids the
  /// parity lock on bipartite graphs where two synchronized walkers can
  /// never co-locate).
  explicit RandomWalkAgent(Rng rng, double lazy_probability = 0.5)
      : rng_(rng), lazy_probability_(lazy_probability) {}

  sim::Action step(const sim::View& view) override {
    if (view.degree() == 0 || rng_.bernoulli(lazy_probability_))
      return sim::Action::stay();
    return sim::Action::move(rng_.below(view.degree()));
  }

  [[nodiscard]] std::size_t memory_words() const override { return 1; }

 private:
  Rng rng_;
  double lazy_probability_;
};

}  // namespace fnr::baselines
