// The trivial O(Δ) upper bound the paper opens with: agent b halts at its
// start, agent a visits every neighbor in port order (out and back, two
// rounds per neighbor). Works in the weakest model (no IDs, no whiteboards)
// and meets within 2·deg(v₀ᵃ) rounds on any distance-1 instance.
#pragma once

#include "sim/view.hpp"

namespace fnr::baselines {

/// Agent that never moves (used by several baselines as agent b).
class WaitingAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View&) override { return sim::Action::stay(); }
  [[nodiscard]] std::size_t memory_words() const override { return 0; }
};

/// Agent a of the trivial algorithm: sweep all ports of the start vertex.
class SweepAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View& view) override;
  [[nodiscard]] std::size_t memory_words() const override { return 2; }
  /// Ports already swept.
  [[nodiscard]] std::size_t swept() const noexcept { return next_port_; }

 private:
  bool outbound_done_ = false;  // true while standing on a neighbor
  std::size_t next_port_ = 0;
};

}  // namespace fnr::baselines
