// The exhaustive-search strategy the paper contrasts with (§1.1): agent b
// halts, agent a explores the whole graph. With neighborhood IDs (KT1) the
// exploration is an online DFS over vertex IDs: move to the smallest-ID
// unvisited neighbor, else backtrack; every vertex is reached within 2(n-1)
// rounds. This is the Θ(n)-round yardstick that the paper's algorithms beat
// on dense graphs and that the lower-bound instances show is unavoidable in
// the degraded models.
#pragma once

#include <unordered_set>
#include <vector>

#include "sim/view.hpp"

namespace fnr::baselines {

class ExploreAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View& view) override;

  [[nodiscard]] std::size_t visited_count() const noexcept {
    return visited_.size();
  }
  /// True once the DFS stack emptied (every reachable vertex was seen).
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] std::size_t memory_words() const override {
    return visited_.size() + path_.size() + 2;
  }

 private:
  std::unordered_set<graph::VertexId> visited_;
  std::vector<graph::VertexId> path_;  // DFS stack of vertex IDs
  bool finished_ = false;
};

}  // namespace fnr::baselines
