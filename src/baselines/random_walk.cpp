// RandomWalkAgent is header-only; see random_walk.hpp.
#include "baselines/random_walk.hpp"
