// Theorem 6 — the adaptive adversary against deterministic algorithms.
//
// Lemma 9, made executable: given a deterministic agent and an ID space of
// n/2 + 1 vertices, the adversary starts from a star around the start vertex
// v₀ plus a clique on the reserve set P̄, and lazily pins down the rest of
// the graph as the agent walks: the first time the agent enters a vertex of
// the pool P, that vertex gets connected to every still-unvisited pool
// vertex. After t <= n/32 rounds at least 13n/32 pool vertices W remain that
// the agent never approached — each adjacent only to v₀.
//
// The full Theorem 6 instance glues two such transcripts (one per agent)
// with the edge (j, k) and a biclique on W_a × W_b, yielding a Θ(n)-degree
// distance-1 instance on which the two deterministic agents provably cannot
// meet within n/32 rounds (they reproduce their solo transcripts).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "sim/scheduler.hpp"

namespace fnr::lower_bounds {

/// What a deterministic algorithm may observe in the adversary's world:
/// its position's ID, the IDs of the neighbors, and the round. (Determinism
/// is the point; there is no RNG anywhere in this interface.)
struct DetView {
  graph::VertexId here = 0;
  const std::vector<graph::VertexId>& neighbors;
  std::uint64_t round = 0;
};

class DeterministicAgent {
 public:
  virtual ~DeterministicAgent() = default;
  /// Returns the ID of a neighbor to move to, or `view.here` to stay.
  [[nodiscard]] virtual graph::VertexId choose_move(const DetView& view) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Factory so the same algorithm can be instantiated for the solo transcript
/// and again (fresh) for the final two-agent run.
using DetAgentFactory =
    std::unique_ptr<DeterministicAgent> (*)();

/// Outcome of one solo adversary run (Lemma 9).
struct AdversaryTranscript {
  std::vector<graph::VertexId> ids;           ///< the ID space used
  graph::VertexId start = 0;                  ///< v₀
  std::vector<graph::VertexId> visited;       ///< Q_t in visit order
  std::vector<graph::VertexId> untouched;     ///< W = P \ Q_t
  /// Final adjacency (by ID) after the lazy construction.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
};

/// Runs the Lemma 9 construction for `rounds` rounds against a fresh agent
/// from `factory`, over the ID space `ids` (distinct IDs; ids[0] is v₀).
[[nodiscard]] AdversaryTranscript run_lemma9(DetAgentFactory factory,
                                             std::vector<graph::VertexId> ids,
                                             std::uint64_t rounds);

/// The glued Theorem 6 instance built from two transcripts.
struct Theorem6Instance {
  graph::Graph graph;
  sim::Placement placement;  ///< agents start on the (j, k) bridge
  std::size_t w_a = 0;       ///< |W| of agent a's transcript
  std::size_t w_b = 0;
};

/// Builds the hard instance for a pair of deterministic algorithms on n
/// vertices (n must be a multiple of 32). Runs each solo transcript for
/// n/32 rounds, then glues per the Theorem 6 proof.
[[nodiscard]] Theorem6Instance build_theorem6_instance(
    DetAgentFactory factory_a, DetAgentFactory factory_b, std::size_t n);

/// Adapter: runs a DeterministicAgent inside the standard simulator (used
/// for the final two-agent run on the glued instance).
class DetAgentAdapter final : public sim::Agent {
 public:
  explicit DetAgentAdapter(std::unique_ptr<DeterministicAgent> inner)
      : inner_(std::move(inner)) {}
  sim::Action step(const sim::View& view) override;

 private:
  std::unique_ptr<DeterministicAgent> inner_;
};

// --- concrete deterministic strategies (the "any algorithm" witnesses) ----

/// Greedy DFS over vertex IDs (deterministic twin of ExploreAgent).
[[nodiscard]] std::unique_ptr<DeterministicAgent> make_lex_dfs();
/// Sweeps the start's neighborhood in ascending ID order (out and back).
[[nodiscard]] std::unique_ptr<DeterministicAgent> make_lex_sweep();
/// Always exits through the lexicographically next neighbor after the one
/// it arrived from (right-hand-rule flavour).
[[nodiscard]] std::unique_ptr<DeterministicAgent> make_rotor_walk();

}  // namespace fnr::lower_bounds
