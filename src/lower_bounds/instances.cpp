#include "lower_bounds/instances.hpp"

namespace fnr::lower_bounds {

HardInstance theorem3_instance(std::size_t leaves_per_center) {
  auto built = graph::make_double_star(leaves_per_center);
  return HardInstance{std::move(built.graph),
                      sim::Placement{built.center_a, built.center_b},
                      sim::Model::full(),
                      "thm3-double-star"};
}

HardInstance theorem3_general_instance(std::size_t branches,
                                       std::size_t clique_size) {
  auto built = graph::make_double_star_cliques(branches, clique_size);
  return HardInstance{std::move(built.graph),
                      sim::Placement{built.center_a, built.center_b},
                      sim::Model::full(),
                      "thm3-clique-star"};
}

HardInstance theorem4_instance(std::size_t half) {
  auto built = graph::make_bridged_cliques(half);
  return HardInstance{std::move(built.graph),
                      sim::Placement{built.a_start, built.b_start},
                      sim::Model::port_only(),
                      "thm4-bridged-cliques",
                      built.x1};
}

HardInstance theorem5_instance(std::size_t half) {
  auto built = graph::make_shared_vertex_cliques(half);
  return HardInstance{std::move(built.graph),
                      sim::Placement{built.a_start, built.b_start},
                      sim::Model::full(),
                      "thm5-shared-vertex",
                      built.shared};
}

}  // namespace fnr::lower_bounds
