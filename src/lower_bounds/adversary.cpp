#include "lower_bounds/adversary.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "util/check.hpp"

namespace fnr::lower_bounds {

namespace {

/// The adversary's mutable world: adjacency over vertex IDs, kept sorted so
/// deterministic agents see a canonical neighbor order.
class LazyWorld {
 public:
  explicit LazyWorld(const std::vector<graph::VertexId>& ids) {
    for (const auto id : ids) adjacency_[id];  // materialize all vertices
  }

  void add_edge(graph::VertexId u, graph::VertexId v) {
    if (u == v) return;
    adjacency_[u].insert(v);
    adjacency_[v].insert(u);
  }

  [[nodiscard]] bool has_edge(graph::VertexId u, graph::VertexId v) const {
    const auto it = adjacency_.find(u);
    return it != adjacency_.end() && it->second.contains(v);
  }

  [[nodiscard]] std::vector<graph::VertexId> neighbors(
      graph::VertexId v) const {
    const auto it = adjacency_.find(v);
    FNR_CHECK(it != adjacency_.end());
    return {it->second.begin(), it->second.end()};
  }

  [[nodiscard]] std::vector<std::pair<graph::VertexId, graph::VertexId>>
  edge_list() const {
    std::vector<std::pair<graph::VertexId, graph::VertexId>> edges;
    for (const auto& [u, nbrs] : adjacency_)
      for (const auto v : nbrs)
        if (u < v) edges.emplace_back(u, v);
    return edges;
  }

 private:
  std::map<graph::VertexId, std::set<graph::VertexId>> adjacency_;
};

}  // namespace

AdversaryTranscript run_lemma9(DetAgentFactory factory,
                               std::vector<graph::VertexId> ids,
                               std::uint64_t rounds) {
  FNR_CHECK_MSG(ids.size() >= 9, "Lemma 9 needs a non-trivial ID space");
  const graph::VertexId v0 = ids[0];

  // |V| = n/2 + 1 for a final instance of n vertices; the pool P gets
  // 7n/16 = 7(|V|-1)/8 vertices, the reserve P̄ the rest (plus v0).
  const std::size_t pool_size = 7 * (ids.size() - 1) / 8;
  const std::vector<graph::VertexId> pool(ids.begin() + 1,
                                          ids.begin() + 1 + pool_size);
  const std::unordered_set<graph::VertexId> pool_set(pool.begin(), pool.end());
  // The reserve P̄ = V \ P (v0 belongs to it; it is a clique).
  const std::vector<graph::VertexId> reserve(ids.begin() + 1 + pool_size,
                                             ids.end());

  LazyWorld world(ids);
  // E0: star around v0, clique on the reserve (v0 included in the reserve).
  for (std::size_t i = 1; i < ids.size(); ++i) world.add_edge(v0, ids[i]);
  for (std::size_t i = 1 + pool_size; i < ids.size(); ++i) {
    world.add_edge(v0, ids[i]);
    for (std::size_t j = i + 1; j < ids.size(); ++j)
      world.add_edge(ids[i], ids[j]);
  }

  auto agent = factory();
  AdversaryTranscript transcript;
  transcript.ids = ids;
  transcript.start = v0;

  std::unordered_set<graph::VertexId> visited{v0};
  transcript.visited.push_back(v0);
  graph::VertexId here = v0;

  for (std::uint64_t round = 0; round < rounds; ++round) {
    const auto neighbors = world.neighbors(here);
    const DetView view{here, neighbors, round};
    const graph::VertexId next = agent->choose_move(view);
    if (next == here) continue;  // staying is allowed
    FNR_CHECK_MSG(world.has_edge(here, next),
                  "deterministic agent tried the non-edge (" << here << ", "
                                                             << next << ")");
    if (pool_set.contains(next) && !visited.contains(next)) {
      // First entry into a pool vertex: pin its neighborhood to every
      // still-unvisited reserve vertex. (Connecting to the reserve — not the
      // pool — is what keeps the stranded set W adjacent only to v0 while
      // still giving visited pool vertices Θ(n) degree; the paper's degree
      // accounting |P̄\Q_r| >= n/16 - n/32 confirms this reading.)
      for (const auto w : reserve)
        if (w != next && !visited.contains(w)) world.add_edge(next, w);
    }
    here = next;
    if (visited.insert(here).second) transcript.visited.push_back(here);
  }

  for (const auto w : pool)
    if (!visited.contains(w)) transcript.untouched.push_back(w);
  transcript.edges = world.edge_list();
  return transcript;
}

Theorem6Instance build_theorem6_instance(DetAgentFactory factory_a,
                                         DetAgentFactory factory_b,
                                         std::size_t n) {
  FNR_CHECK_MSG(n % 32 == 0 && n >= 64, "Theorem 6 needs n ≡ 0 (mod 32)");
  const std::uint64_t budget = n / 32;
  const std::size_t half = n / 2;

  auto make_ids = [](graph::VertexId start, graph::VertexId lo,
                     graph::VertexId hi) {
    std::vector<graph::VertexId> ids{start};
    for (graph::VertexId id = lo; id < hi; ++id) ids.push_back(id);
    return ids;
  };

  // Find (j, k) with k ∈ W_{a,j} and j ∈ W_{b,k}. The counting argument in
  // the paper guarantees such a pair exists; for concrete deterministic
  // agents the very first candidates almost always work.
  for (graph::VertexId j = half; j < n; ++j) {
    const auto transcript_a =
        run_lemma9(factory_a, make_ids(j, 0, half), budget);
    for (const auto k : transcript_a.untouched) {
      const auto transcript_b =
          run_lemma9(factory_b, make_ids(k, half, n), budget);
      const auto& w_b = transcript_b.untouched;
      if (std::find(w_b.begin(), w_b.end(), j) == w_b.end()) continue;

      // Glue the two transcripts.
      graph::GraphBuilder builder(n);
      auto add = [&](graph::VertexId u, graph::VertexId v) {
        builder.add_edge(static_cast<graph::VertexIndex>(u),
                         static_cast<graph::VertexIndex>(v));
      };
      for (const auto& [u, v] : transcript_a.edges) add(u, v);
      for (const auto& [u, v] : transcript_b.edges) add(u, v);
      add(j, k);
      std::size_t wa = 0;
      for (const auto u : transcript_a.untouched) {
        if (u == k) continue;
        ++wa;
        for (const auto v : w_b)
          if (v != j) add(u, v);
      }
      Theorem6Instance instance;
      instance.graph = std::move(builder).build_identity_ids();
      instance.placement =
          sim::Placement{static_cast<graph::VertexIndex>(j),
                         static_cast<graph::VertexIndex>(k)};
      instance.w_a = wa;
      instance.w_b = w_b.size() - 1;
      return instance;
    }
  }
  FNR_CHECK_MSG(false, "no (j, k) pair found — should be impossible");
  return {};
}

sim::Action DetAgentAdapter::step(const sim::View& view) {
  const DetView det_view{view.here(), view.neighbor_ids(), view.round()};
  const graph::VertexId next = inner_->choose_move(det_view);
  if (next == view.here()) return sim::Action::stay();
  return sim::Action::move(view.port_of(next));
}

// --- concrete deterministic strategies -------------------------------------

namespace {

class LexDfs final : public DeterministicAgent {
 public:
  graph::VertexId choose_move(const DetView& view) override {
    if (path_.empty()) {
      path_.push_back(view.here);
      visited_.insert(view.here);
    }
    graph::VertexId best = 0;
    bool found = false;
    for (const auto id : view.neighbors) {
      if (visited_.contains(id)) continue;
      if (!found || id < best) {
        best = id;
        found = true;
      }
    }
    if (found) {
      visited_.insert(best);
      path_.push_back(best);
      return best;
    }
    path_.pop_back();
    if (path_.empty()) return view.here;  // exploration finished
    return path_.back();
  }
  [[nodiscard]] std::string name() const override { return "lex-dfs"; }

 private:
  std::unordered_set<graph::VertexId> visited_;
  std::vector<graph::VertexId> path_;
};

class LexSweep final : public DeterministicAgent {
 public:
  graph::VertexId choose_move(const DetView& view) override {
    if (!init_) {
      home_ = view.here;
      targets_ = view.neighbors;  // already ascending
      init_ = true;
    }
    if (view.here != home_) return home_;  // bounce back
    if (next_ >= targets_.size()) return view.here;  // swept everything
    return targets_[next_++];
  }
  [[nodiscard]] std::string name() const override { return "lex-sweep"; }

 private:
  bool init_ = false;
  graph::VertexId home_ = 0;
  std::vector<graph::VertexId> targets_;
  std::size_t next_ = 0;
};

class RotorWalk final : public DeterministicAgent {
 public:
  graph::VertexId choose_move(const DetView& view) override {
    if (view.neighbors.empty()) return view.here;
    std::size_t exit_index = 0;
    const auto it = std::lower_bound(view.neighbors.begin(),
                                     view.neighbors.end(), previous_);
    if (has_previous_ && it != view.neighbors.end() && *it == previous_) {
      exit_index = static_cast<std::size_t>(it - view.neighbors.begin() + 1) %
                   view.neighbors.size();
    }
    previous_ = view.here;
    has_previous_ = true;
    return view.neighbors[exit_index];
  }
  [[nodiscard]] std::string name() const override { return "rotor-walk"; }

 private:
  bool has_previous_ = false;
  graph::VertexId previous_ = 0;
};

}  // namespace

std::unique_ptr<DeterministicAgent> make_lex_dfs() {
  return std::make_unique<LexDfs>();
}
std::unique_ptr<DeterministicAgent> make_lex_sweep() {
  return std::make_unique<LexSweep>();
}
std::unique_ptr<DeterministicAgent> make_rotor_walk() {
  return std::make_unique<RotorWalk>();
}

}  // namespace fnr::lower_bounds
