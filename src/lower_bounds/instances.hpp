// Executable hard instances for Theorems 3, 4, and 5 (Figures 1-3).
//
// Each maker returns the graph, the agents' mandated starting placement, and
// the model under which the theorem's impossibility applies. The benches run
// representative algorithm families on these instances and measure the
// Ω(Δ) / Ω(n) behaviour the theorems predict.
#pragma once

#include <string>

#include "graph/generators.hpp"
#include "sim/model.hpp"
#include "sim/scheduler.hpp"

namespace fnr::lower_bounds {

struct HardInstance {
  graph::Graph graph;
  sim::Placement placement;
  sim::Model model;
  std::string name;
  /// Construction-specific landmark (the shared vertex of Figure 3, the
  /// bridge endpoint x1 of Figure 2); kNoVertex when not applicable.
  graph::VertexIndex aux = graph::kNoVertex;
};

/// Theorem 3 / Figure 1(a): glued stars; δ = 1, Δ = leaves+1, distance 1.
/// Any algorithm needs Ω(Δ) rounds with constant probability.
[[nodiscard]] HardInstance theorem3_instance(std::size_t leaves_per_center);

/// Theorem 3 / Figure 1(b): glued clique-stars with δ = clique_size - 1.
[[nodiscard]] HardInstance theorem3_general_instance(std::size_t branches,
                                                     std::size_t clique_size);

/// Theorem 4 / Figure 2: bridged cliques; distance 1, δ = Δ = n/2 - 1, but
/// the model hides neighborhood IDs (port-only).
[[nodiscard]] HardInstance theorem4_instance(std::size_t half);

/// Theorem 5 / Figure 3: two cliques sharing one vertex; the agents start at
/// distance TWO — outside the neighborhood-rendezvous promise.
[[nodiscard]] HardInstance theorem5_instance(std::size_t half);

}  // namespace fnr::lower_bounds
