#include "fault/fault.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/parse.hpp"

namespace fnr::fault {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "crash", "wb-drop", "wb-wipe", "wb-stale", "churn"};

/// Shortest round-trip decimal form (same contract as program labels: the
/// canonical key is a cell identity, so parsing it back must be lossless).
std::string round_trip_double(double value) {
  char buffer[64];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  FNR_CHECK(ec == std::errc());
  return std::string(buffer, end);
}

std::string known_families() {
  std::ostringstream os;
  for (const auto* name : kSiteNames) os << " " << name;
  return os.str();
}

/// Non-negative integral parameter (skip/count/downtime ride through the
/// shared double-valued override map).
std::uint64_t integral_param(const std::string& clause, const char* name,
                             double value) {
  FNR_CHECK_MSG(value >= 0.0 && value == std::floor(value) && value <= 1e18,
                "fault clause '" << clause << "': parameter '" << name
                                 << "' must be a non-negative integer, got "
                                 << value);
  return static_cast<std::uint64_t>(value);
}

/// Parses one `family[?key=value&...]` clause into (site, spec).
void parse_clause(const std::string& clause, FaultPlan* plan) {
  const auto question = clause.find('?');
  const std::string family = clause.substr(0, question);
  FNR_CHECK_MSG(!family.empty(), "fault clause '"
                                     << clause
                                     << "': empty family before '?'; known:"
                                     << known_families());
  std::size_t site_index = kNumSites;
  for (std::size_t i = 0; i < kNumSites; ++i)
    if (family == kSiteNames[i]) site_index = i;
  FNR_CHECK_MSG(site_index < kNumSites, "unknown fault family '"
                                            << family << "'; known:"
                                            << known_families());
  const auto site = static_cast<Site>(site_index);

  SiteSpec spec;
  spec.armed = true;
  if (question != std::string::npos) {
    const std::string suffix = clause.substr(question + 1);
    FNR_CHECK_MSG(!suffix.empty(),
                  "fault clause '" << clause << "': empty parameter suffix");
    std::size_t start = 0;
    for (;;) {
      const auto amp = suffix.find('&', start);
      const std::string token =
          amp == std::string::npos ? suffix.substr(start)
                                   : suffix.substr(start, amp - start);
      FNR_CHECK_MSG(!token.empty(), "fault clause '"
                                        << clause
                                        << "': empty 'key=value' pair in "
                                           "parameter suffix");
      const auto eq = token.find('=');
      FNR_CHECK_MSG(eq != std::string::npos && eq > 0,
                    "fault clause '" << clause << "': parameter '" << token
                                     << "' is not key=value");
      const std::string name = token.substr(0, eq);
      const bool known = name == "rate" || name == "skip" || name == "count" ||
                         (site == Site::AgentCrash && name == "downtime");
      FNR_CHECK_MSG(known, "fault family '"
                               << family << "' has no parameter '" << name
                               << "'; declared: rate skip count"
                               << (site == Site::AgentCrash ? " downtime"
                                                            : ""));
      FNR_CHECK_MSG(!spec.overrides.contains(name),
                    "fault clause '" << clause << "' repeats parameter '"
                                     << name << "'");
      const double value = parse_finite_double(
          token.substr(eq + 1), "fault parameter '" + name + "'");
      spec.overrides[name] = value;
      if (name == "rate") {
        spec.rate = value;
      } else if (name == "skip") {
        spec.skip = integral_param(clause, "skip", value);
      } else if (name == "count") {
        spec.count = integral_param(clause, "count", value);
      } else {
        spec.downtime = integral_param(clause, "downtime", value);
      }
      if (amp == std::string::npos) break;
      start = amp + 1;
    }
  }
  plan->arm(site, std::move(spec));
}

}  // namespace

const char* to_string(Site site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

FaultPlan FaultPlan::parse(const std::string& token) {
  FaultPlan plan;
  if (token == "none") return plan;
  FNR_CHECK_MSG(!token.empty(),
                "empty fault spec (use 'none' for the fault-free plan)");
  std::size_t start = 0;
  for (;;) {
    const auto plus = token.find('+', start);
    const std::string clause = plus == std::string::npos
                                   ? token.substr(start)
                                   : token.substr(start, plus - start);
    FNR_CHECK_MSG(!clause.empty(),
                  "fault spec '" << token << "': empty clause between '+'");
    FNR_CHECK_MSG(clause != "none",
                  "fault spec '" << token
                                 << "': 'none' cannot combine with clauses");
    parse_clause(clause, &plan);
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return plan;
}

void FaultPlan::arm(Site site, SiteSpec spec) {
  const char* family = to_string(site);
  FNR_CHECK_MSG(!sites_[static_cast<std::size_t>(site)].armed,
                "fault family '" << family << "' is armed twice");
  FNR_CHECK_MSG(std::isfinite(spec.rate) && spec.rate >= 0.0 &&
                    spec.rate <= 1.0,
                "fault family '" << family << "': rate must be a finite "
                                 << "number in [0, 1], got " << spec.rate);
  if (site == Site::AgentCrash)
    FNR_CHECK_MSG(spec.downtime >= 1,
                  "fault family 'crash': downtime must be >= 1 rounds, got "
                      << spec.downtime);
  spec.armed = true;
  sites_[static_cast<std::size_t>(site)] = std::move(spec);
}

bool FaultPlan::active() const noexcept {
  for (const auto& spec : sites_)
    if (spec.armed) return true;
  return false;
}

std::string FaultPlan::key() const {
  std::ostringstream os;
  bool first_clause = true;
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (!sites_[i].armed) continue;
    if (!first_clause) os << "+";
    first_clause = false;
    os << kSiteNames[i];
    bool first_param = true;
    for (const auto& [name, value] : sites_[i].overrides) {
      os << (first_param ? "?" : "&") << name << "="
         << round_trip_double(value);
      first_param = false;
    }
  }
  return os.str();
}

bool FaultPlan::whiteboard_only() const noexcept {
  bool any = false;
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (!sites_[i].armed) continue;
    const auto site = static_cast<Site>(i);
    if (site == Site::AgentCrash || site == Site::EdgeChurn) return false;
    any = true;
  }
  return any;
}

FaultSession::FaultSession(const FaultPlan& plan, Rng rng)
    : plan_(&plan), rng_(rng), churn_seed_(rng_()) {}

bool FaultSession::reach(Site site) {
  const SiteSpec& spec = plan_->spec(site);
  if (!spec.armed || spec.rate <= 0.0) return false;
  SiteState& st = state_[static_cast<std::size_t>(site)];
  if (st.seen < spec.skip) {
    ++st.seen;
    return false;
  }
  if (spec.count != 0 && st.fired >= spec.count) return false;
  if (!rng_.bernoulli(spec.rate)) return false;
  ++st.fired;
  return true;
}

bool FaultSession::edge_down(std::uint64_t round, graph::VertexIndex u,
                             graph::VertexIndex v) const {
  const SiteSpec& spec = plan_->spec(Site::EdgeChurn);
  if (!spec.armed || spec.rate <= 0.0) return false;
  if (round < spec.skip) return false;
  if (spec.count != 0 && round >= spec.skip + spec.count) return false;
  const std::uint64_t lo = u < v ? u : v;
  const std::uint64_t hi = u < v ? v : u;
  // One splitmix64 step over the mixed identity gives a uniform hash; the
  // same (seed, round, edge) triple always lands on the same side of rate.
  std::uint64_t state = churn_seed_ ^ (round * 0x9e3779b97f4a7c15ULL) ^
                        (lo * 0xbf58476d1ce4e5b9ULL) ^
                        (hi * 0x94d049bb133111ebULL);
  const double draw =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return draw < spec.rate;
}

}  // namespace fnr::fault
