// Deterministic fault & churn injection (the robustness lab).
//
// The paper's strategies assume a reliable substrate: agents never die,
// whiteboard writes always land, the graph never flaps. Real deployments
// break all three, so this layer turns the deterministic sweep grid into a
// robustness lab: a FaultPlan names which injection sites are armed (in the
// style of ydb's TFailureInjector::Set — per-site skip/count windows around
// a Bernoulli rate), a FaultSession draws every fault from one per-trial
// split RNG stream, and the Scheduler consults the session behind a
// null-pointer guard so fault-free runs stay bit-identical to a build
// without this module at all.
//
// Fault families (one injection site each):
//   crash     an awake agent loses all program state and is inert for
//             `downtime` rounds, then restarts from a fresh instance on its
//             current vertex with its local clock back at 0
//   wb-drop   a whiteboard write silently fails to land
//   wb-wipe   every whiteboard is erased at the start of the round
//   wb-stale  a whiteboard read misses the stored value (observes ⊥)
//   churn     per-round edge down-masks: a move over a down edge is blocked
//             (the agent holds position; both directions agree)
//
// Determinism. Crash/drop/wipe/stale draw from the session's Rng in the
// scheduler's fixed visit order (wipe, then per-agent crash + step reads,
// then writes in agent-index order), so one (plan, seed) pair replays
// exactly. Churn is *stateless*: an edge's up/down bit is a splitmix64 hash
// of (session seed, round, unordered endpoint pair), so probing liveness
// never perturbs the RNG stream and any observer sees the same mask.
//
// Spec grammar (sweep axis `faults =`, canonical key = FaultPlan::key):
//   none | clause[+clause...]   clause := family[?key=value[&key=value...]]
// e.g. "crash?rate=0.01", "wb-drop?rate=0.2+churn?rate=0.05&skip=16".
// Every family takes rate (Bernoulli fire probability per opportunity),
// skip (opportunities passed through before arming), count (max fires,
// 0 = unlimited); crash additionally takes downtime (rounds down before
// the restart, >= 1). For churn, skip/count delimit a round window
// [skip, skip+count) of flapping instead of counting fires.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fnr::sim {
class Agent;
}  // namespace fnr::sim

namespace fnr::fault {

/// The named injection sites, in canonical (key) order.
enum class Site : std::size_t {
  AgentCrash = 0,
  WhiteboardDrop,
  WhiteboardWipe,
  WhiteboardStale,
  EdgeChurn,
};
inline constexpr std::size_t kNumSites = 5;

/// The site's spec-grammar family name (e.g. "wb-drop").
[[nodiscard]] const char* to_string(Site site) noexcept;

/// How one site is armed (TFailureInjector-style skip/count around a rate).
struct SiteSpec {
  bool armed = false;
  double rate = 0.01;         ///< fire probability per opportunity
  std::uint64_t skip = 0;     ///< opportunities passed through before arming
  std::uint64_t count = 0;    ///< max fires (0 = unlimited)
  std::uint64_t downtime = 8; ///< crash only: rounds down before restart
  /// The overrides as written (name-sorted); key() re-emits exactly these,
  /// so the canonical form is independent of the order the user wrote.
  std::map<std::string, double> overrides;
};

/// Counters of faults that actually fired during one run. Flows into
/// ScenarioRunResult / TrialOutcome and (summed) into TrialAggregate.
struct FaultStats {
  std::uint64_t crashes = 0;        ///< agents that lost their state
  std::uint64_t restarts = 0;       ///< fresh instances revived after a crash
  std::uint64_t writes_dropped = 0; ///< whiteboard writes that never landed
  std::uint64_t wipes = 0;          ///< whole-store erasures
  std::uint64_t stale_reads = 0;    ///< reads that observed ⊥ over a value
  std::uint64_t moves_blocked = 0;  ///< traversals blocked by a down edge

  [[nodiscard]] bool any() const noexcept {
    return (crashes | restarts | writes_dropped | wipes | stale_reads |
            moves_blocked) != 0;
  }
};

/// A declarative, seedless fault plan: which sites are armed and how.
/// Plans are cheap values; the per-run randomness lives in FaultSession.
class FaultPlan {
 public:
  /// The inactive plan (no site armed; key() is "").
  FaultPlan() = default;

  /// Parses the spec grammar (see the file header). "none" yields the
  /// inactive plan. Throws CheckError on unknown families, unknown /
  /// duplicate / non-finite / out-of-range parameters, and malformed
  /// suffixes, enumerating the valid names.
  [[nodiscard]] static FaultPlan parse(const std::string& token);

  /// Arms `site` programmatically (tests, custom harnesses). Validates the
  /// spec (rate finite in [0, 1], downtime >= 1).
  void arm(Site site, SiteSpec spec);

  /// Whether any site is armed. Inactive plans never create sessions, so
  /// the fault-free path carries no per-run cost at all.
  [[nodiscard]] bool active() const noexcept;

  [[nodiscard]] const SiteSpec& spec(Site site) const noexcept {
    return sites_[static_cast<std::size_t>(site)];
  }

  /// Canonical spec string: armed clauses in Site order, each with its
  /// overrides name-sorted ("" when inactive). Parsing the key back yields
  /// an equivalent plan, so it is a valid sweep-cell identity component.
  [[nodiscard]] std::string key() const;

  /// True when the armed sites all require whiteboards (wb-*): such a plan
  /// is meaningless on a whiteboard-free model and grid expansion prunes
  /// the combination.
  [[nodiscard]] bool whiteboard_only() const noexcept;

 private:
  std::array<SiteSpec, kNumSites> sites_;
};

/// Per-run fault state: one Rng stream, per-site skip/count progress, and
/// the fired-fault counters. Construct one per trial from the trial's split
/// seed; the Scheduler consults it through a nullable pointer.
class FaultSession {
 public:
  /// `plan` must outlive the session. `rng` is the session's private
  /// stream (hand it a split of the trial seed, never a shared generator).
  FaultSession(const FaultPlan& plan, Rng rng);

  /// One opportunity at `site`: consumes the skip window, then fires with
  /// probability rate until the count budget is spent. Draws from the
  /// session Rng only once the window is open, so a site with rate 0 (or
  /// an unarmed site) never perturbs the stream.
  [[nodiscard]] bool reach(Site site);

  /// Whether the undirected edge {u, v} is down in `round`. Stateless hash
  /// of (session seed, round, min, max): symmetric in u/v, constant within
  /// a round, and free of RNG-stream side effects. The churn site's
  /// skip/count delimit the flapping round window.
  [[nodiscard]] bool edge_down(std::uint64_t round, graph::VertexIndex u,
                               graph::VertexIndex v) const;

  /// Fast guard for the move loop: is churn armed at all?
  [[nodiscard]] bool churn_armed() const noexcept {
    return plan_->spec(Site::EdgeChurn).armed;
  }

  /// Rounds a crashed agent stays inert before its restart (>= 1).
  [[nodiscard]] std::uint64_t crash_downtime() const noexcept {
    return plan_->spec(Site::AgentCrash).downtime;
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

  /// Builds the fresh replacement instance for a crashed agent slot. The
  /// scenario layer installs this (program factory + its own split RNG
  /// schedule) and owns the instances; the Scheduler only swaps pointers.
  /// A crash reach with no reviver installed is a CheckError.
  std::function<sim::Agent*(std::size_t slot)> revive;

  /// Faults that fired so far (the Scheduler and Views increment this).
  FaultStats stats;

 private:
  struct SiteState {
    std::uint64_t seen = 0;   ///< opportunities consumed by the skip window
    std::uint64_t fired = 0;  ///< fires charged against count
  };

  const FaultPlan* plan_;
  Rng rng_;
  std::uint64_t churn_seed_;
  std::array<SiteState, kNumSites> state_;
};

}  // namespace fnr::fault
