#include "runner/trial_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/check.hpp"
#include "util/table.hpp"

namespace fnr::runner {

std::uint64_t trial_seed(std::uint64_t base_seed,
                         std::uint64_t trial) noexcept {
  // Decorrelate the per-trial streams the same way Rng decorrelates
  // (seed, stream) pairs, then run one splitmix64 step for avalanche.
  std::uint64_t state = base_seed ^ (0x6a09e667f3bcc909ULL * (trial + 1));
  const std::uint64_t mixed = splitmix64(state);
  return mixed != 0 ? mixed : 1;
}

TrialOutcome TrialOutcome::from_run(std::uint64_t trial, std::uint64_t seed,
                                    const sim::RunResult& run,
                                    std::uint64_t marks) {
  TrialOutcome out;
  out.trial = trial;
  out.seed = seed;
  out.met = run.met;
  out.meeting_round = run.meeting_round;
  // The classic two-agent runner meets exactly in pairs; scenario runs
  // carry the scheduler's actual co-location size (see scenario::to_outcome).
  out.gathered_count = run.met ? 2 : 0;
  out.rounds = run.metrics.rounds;
  out.moves_a = run.metrics.moves_of(sim::AgentName::A);
  out.moves_b = run.metrics.moves_of(sim::AgentName::B);
  out.whiteboard_marks = marks;
  return out;
}

void TrialAccumulator::add(TrialOutcome outcome) {
  outcomes_.push_back(outcome);
}

void TrialAccumulator::merge(const TrialAccumulator& other) {
  outcomes_.insert(outcomes_.end(), other.outcomes_.begin(),
                   other.outcomes_.end());
}

std::vector<TrialOutcome> TrialAccumulator::sorted_outcomes() const {
  std::vector<TrialOutcome> sorted = outcomes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const TrialOutcome& a, const TrialOutcome& b) {
              return a.trial != b.trial ? a.trial < b.trial : a.seed < b.seed;
            });
  return sorted;
}

TrialAggregate TrialAccumulator::aggregate() const {
  const auto sorted = sorted_outcomes();
  TrialAggregate agg;
  agg.trials = sorted.size();
  if (sorted.empty()) return agg;

  std::vector<double> rounds;
  rounds.reserve(sorted.size());
  double moves_a = 0.0, moves_b = 0.0, gathered = 0.0;
  for (const auto& out : sorted) {
    if (out.met) {
      ++agg.successes;
      rounds.push_back(static_cast<double>(out.meeting_round));
      gathered += static_cast<double>(out.gathered_count);
    } else {
      ++agg.failures;
    }
    agg.total_marks += out.whiteboard_marks;
    moves_a += static_cast<double>(out.moves_a);
    moves_b += static_cast<double>(out.moves_b);
    agg.fault_totals.crashes += out.faults.crashes;
    agg.fault_totals.restarts += out.faults.restarts;
    agg.fault_totals.writes_dropped += out.faults.writes_dropped;
    agg.fault_totals.wipes += out.faults.wipes;
    agg.fault_totals.stale_reads += out.faults.stale_reads;
    agg.fault_totals.moves_blocked += out.faults.moves_blocked;
  }
  const auto n = static_cast<double>(agg.trials);
  agg.success_rate = static_cast<double>(agg.successes) / n;
  agg.rounds = summarize(std::move(rounds));
  agg.mean_gathered =
      agg.successes > 0 ? gathered / static_cast<double>(agg.successes) : 0.0;
  agg.mean_marks = static_cast<double>(agg.total_marks) / n;
  agg.mean_moves_a = moves_a / n;
  agg.mean_moves_b = moves_b / n;
  return agg;
}

std::string TrialAggregate::csv_header() {
  return "label,trials,successes,failures,success_rate,rounds_mean,"
         "rounds_median,rounds_p90,rounds_p95,rounds_min,rounds_max,"
         "mean_gathered,total_marks,mean_marks,mean_moves_a,mean_moves_b,"
         "fault_crashes,fault_restarts,fault_writes_dropped,fault_wipes,"
         "fault_stale_reads,fault_moves_blocked";
}

namespace {

/// RFC-4180 field quoting. Labels carry `?key=value&...` program suffixes
/// and `|fault=<key>` cell suffixes, so a comma (or quote) in a parameter
/// value would silently shift every later column of the row.
std::string csv_quote(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace

std::string TrialAggregate::to_csv_row(const std::string& label) const {
  std::ostringstream os;
  os << csv_quote(label) << ',' << trials << ',' << successes << ',' << failures << ','
     << format_double(success_rate, 4) << ',' << format_double(rounds.mean, 2)
     << ',' << format_double(rounds.median, 2) << ','
     << format_double(rounds.p90, 2) << ',' << format_double(rounds.p95, 2)
     << ',' << format_double(rounds.min, 2)
     << ',' << format_double(rounds.max, 2) << ','
     << format_double(mean_gathered, 2) << ',' << total_marks << ','
     << format_double(mean_marks, 2) << ',' << format_double(mean_moves_a, 2)
     << ',' << format_double(mean_moves_b, 2) << ',' << fault_totals.crashes
     << ',' << fault_totals.restarts << ',' << fault_totals.writes_dropped
     << ',' << fault_totals.wipes << ',' << fault_totals.stale_reads << ','
     << fault_totals.moves_blocked;
  return os.str();
}

std::string TrialAggregate::to_json() const {
  std::ostringstream os;
  os << "{\"trials\":" << trials << ",\"successes\":" << successes
     << ",\"failures\":" << failures
     << ",\"success_rate\":" << format_double(success_rate, 4)
     << ",\"rounds\":{\"mean\":" << format_double(rounds.mean, 2)
     << ",\"median\":" << format_double(rounds.median, 2)
     << ",\"p90\":" << format_double(rounds.p90, 2)
     << ",\"p95\":" << format_double(rounds.p95, 2)
     << ",\"min\":" << format_double(rounds.min, 2)
     << ",\"max\":" << format_double(rounds.max, 2) << "}"
     << ",\"mean_gathered\":" << format_double(mean_gathered, 2)
     << ",\"total_marks\":" << total_marks
     << ",\"mean_marks\":" << format_double(mean_marks, 2)
     << ",\"mean_moves_a\":" << format_double(mean_moves_a, 2)
     << ",\"mean_moves_b\":" << format_double(mean_moves_b, 2);
  // Emitted only when any injection actually fired: fault-free aggregates
  // keep the exact bytes they had before the fault layer existed.
  if (fault_totals.any()) {
    os << ",\"faults\":{\"crashes\":" << fault_totals.crashes
       << ",\"restarts\":" << fault_totals.restarts
       << ",\"writes_dropped\":" << fault_totals.writes_dropped
       << ",\"wipes\":" << fault_totals.wipes
       << ",\"stale_reads\":" << fault_totals.stale_reads
       << ",\"moves_blocked\":" << fault_totals.moves_blocked << "}";
  }
  os << "}";
  return os.str();
}

TrialRunner::TrialRunner(RunnerOptions options) {
  threads_ = options.threads != 0 ? options.threads
                                  : std::max(1u,
                                             std::thread::hardware_concurrency());
}

unsigned TrialRunner::planned_workers(std::uint64_t n_trials) const noexcept {
  return static_cast<unsigned>(
      std::min<std::uint64_t>(threads_, std::max<std::uint64_t>(n_trials, 1)));
}

void TrialRunner::dispatch(
    std::uint64_t n_trials,
    const std::function<void(unsigned, std::uint64_t)>& body) const {
  if (n_trials == 0) return;

  const unsigned workers = planned_workers(n_trials);

  std::atomic<std::uint64_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&](unsigned worker_index) {
    for (;;) {
      const std::uint64_t trial = next.fetch_add(1, std::memory_order_relaxed);
      if (trial >= n_trials) return;
      try {
        body(worker_index, trial);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining trials so all workers exit promptly.
        next.store(n_trials, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (workers == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker, t);
    for (auto& thread : pool) thread.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

TrialAccumulator TrialRunner::run(
    std::uint64_t n_trials, std::uint64_t base_seed,
    const std::function<TrialOutcome(std::uint64_t, std::uint64_t)>& fn)
    const {
  // The scratch-free batch is the scratch batch with an empty scratch —
  // one copy of the slot-staging/accumulation contract.
  struct NoScratch {};
  return run_with_scratch<NoScratch>(
      n_trials, base_seed,
      [&fn](NoScratch&, std::uint64_t trial, std::uint64_t seed) {
        return fn(trial, seed);
      });
}

}  // namespace fnr::runner
