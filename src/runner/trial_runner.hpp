// Parallel Monte-Carlo trial runner.
//
// Every probabilistic claim in the paper (Theorems 1-2, the δ-doubling
// variant, the lower bounds) is validated by repeated randomized trials;
// this subsystem executes those trials across a std::thread pool.
//
// Determinism contract: trial i always receives the seed
// trial_seed(base_seed, i), workers write their outcome into slot i of a
// pre-sized vector, and aggregation walks the slots in trial order — so the
// aggregate is bit-identical no matter how many threads ran the batch or how
// the OS interleaved them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "fault/fault.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fnr::runner {

/// Deterministic per-trial RNG stream: splits `base_seed` into independent
/// streams, one per trial index, via splitmix64 (never returns 0 so callers
/// may treat seeds as nonzero tokens).
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t base_seed,
                                       std::uint64_t trial) noexcept;

/// One trial's outcome, as fed to the accumulator.
struct TrialOutcome {
  std::uint64_t trial = 0;  ///< trial index within the batch
  std::uint64_t seed = 0;   ///< the split seed the trial ran with
  bool met = false;
  std::uint64_t meeting_round = 0;
  /// Agents co-located on the meeting vertex at the meeting round (0 when
  /// the trial did not meet; 2 for a classic pairwise rendezvous).
  std::uint64_t gathered_count = 0;
  std::uint64_t rounds = 0;  ///< rounds executed (== meeting_round when met)
  std::uint64_t moves_a = 0;
  std::uint64_t moves_b = 0;
  std::uint64_t whiteboard_marks = 0;  ///< b's writes (whiteboard strategies)
  /// Fault-injection counters for this trial (all zero on reliable runs).
  fault::FaultStats faults;

  /// Lifts a Scheduler RunResult into an outcome.
  [[nodiscard]] static TrialOutcome from_run(std::uint64_t trial,
                                             std::uint64_t seed,
                                             const sim::RunResult& run,
                                             std::uint64_t marks = 0);
};

/// Batch-level aggregate statistics.
struct TrialAggregate {
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  double success_rate = 0.0;
  /// Meeting rounds of successful trials.
  Summary rounds;
  /// Mean gathered_count over successful trials (0.0 when none met): the
  /// average co-location size at the meeting vertex — 2.0 for pairwise
  /// rendezvous, k for all-meet, and in (threshold, k] for quorum cells.
  double mean_gathered = 0.0;
  std::uint64_t total_marks = 0;
  double mean_marks = 0.0;
  double mean_moves_a = 0.0;
  double mean_moves_b = 0.0;
  /// Summed fault counters across the batch. All-zero for reliable runs —
  /// and to_json() then omits the "faults" block entirely, keeping
  /// fault-free JSON byte-identical to builds without the fault layer.
  fault::FaultStats fault_totals;

  /// CSV column names matching to_csv_row (leading `label` column).
  [[nodiscard]] static std::string csv_header();
  /// One CSV row; the label is RFC-4180-quoted when it contains a comma,
  /// quote, or line break (cell keys embed program parameter values).
  [[nodiscard]] std::string to_csv_row(const std::string& label) const;
  /// Single-object JSON (stable key order, machine-diffable).
  [[nodiscard]] std::string to_json() const;
};

/// Mergeable accumulator of trial outcomes.
///
/// merge() is associative and commutative at the multiset level, and
/// aggregate() canonicalizes by trial index before any floating-point
/// reduction — so (A ∪ B) ∪ C and A ∪ (B ∪ C) produce bit-identical
/// aggregates regardless of insertion order.
class TrialAccumulator {
 public:
  void add(TrialOutcome outcome);
  void merge(const TrialAccumulator& other);

  [[nodiscard]] std::size_t count() const noexcept {
    return outcomes_.size();
  }
  /// Outcomes sorted by trial index.
  [[nodiscard]] std::vector<TrialOutcome> sorted_outcomes() const;
  [[nodiscard]] TrialAggregate aggregate() const;

 private:
  std::vector<TrialOutcome> outcomes_;
};

struct RunnerOptions {
  /// 0 → std::thread::hardware_concurrency().
  unsigned threads = 0;
};

/// Executes N independent trials across a thread pool.
class TrialRunner {
 public:
  explicit TrialRunner(RunnerOptions options = {});

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Parallel map: runs fn(trial, trial_seed(base_seed, trial)) for each
  /// trial in [0, n_trials) and returns results in trial order. This is the
  /// primitive everything else is built on; use it when a bench needs a
  /// custom per-trial payload. Exceptions thrown by fn are rethrown (first
  /// one wins) after all workers join.
  template <typename Fn>
  [[nodiscard]] auto run_map(std::uint64_t n_trials, std::uint64_t base_seed,
                             Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn, std::uint64_t, std::uint64_t>> {
    using R = std::invoke_result_t<Fn, std::uint64_t, std::uint64_t>;
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> packs bits — concurrent slot writes "
                  "would race. Return char/int instead.");
    std::vector<R> results(n_trials);
    dispatch(n_trials, [&](unsigned /*worker*/, std::uint64_t trial) {
      results[trial] = fn(trial, trial_seed(base_seed, trial));
    });
    return results;
  }

  /// Runs trials whose fn yields a TrialOutcome (or anything convertible via
  /// TrialOutcome::from_run at the call site) and aggregates them.
  [[nodiscard]] TrialAccumulator run(
      std::uint64_t n_trials, std::uint64_t base_seed,
      const std::function<TrialOutcome(std::uint64_t trial,
                                       std::uint64_t seed)>& fn) const;

  /// Like run(), but each worker thread owns one `Scratch` (default-
  /// constructed lazily on the worker's first trial) passed by reference to
  /// every trial that worker executes: fn(scratch, trial, seed). Per-worker
  /// scratch is how batch loops stay allocation-free after warm-up (e.g. a
  /// sim::SchedulerScratch holding a warm arena) without sharing mutable
  /// state across threads. The determinism contract is unchanged — a trial's
  /// outcome must depend only on (trial, seed), never on scratch contents
  /// left behind by earlier trials, so aggregates stay bit-identical across
  /// thread counts.
  template <typename Scratch, typename Fn>
  [[nodiscard]] TrialAccumulator run_with_scratch(std::uint64_t n_trials,
                                                  std::uint64_t base_seed,
                                                  Fn&& fn) const {
    return run_span_with_scratch<Scratch>(0, n_trials, base_seed,
                                          std::forward<Fn>(fn));
  }

  /// Span variant of run_with_scratch: executes *global* trial indices
  /// [first_trial, first_trial + n_trials), each with the seed
  /// trial_seed(base_seed, global_trial) — exactly the seeds those trials
  /// would receive in a single full-range run. Campaign cells split into
  /// trial shards run each shard through this entry and merge the
  /// accumulators (TrialAccumulator::merge canonicalizes by trial index),
  /// so the merged aggregate is bit-identical to one unsharded run no
  /// matter where the span boundaries fall.
  template <typename Scratch, typename Fn>
  [[nodiscard]] TrialAccumulator run_span_with_scratch(
      std::uint64_t first_trial, std::uint64_t n_trials,
      std::uint64_t base_seed, Fn&& fn) const {
    // Cache-line-aligned slots: workers mutate their scratch every round
    // (e.g. whiteboard access counters), so adjacent slots must not share
    // a line and ping-pong between cores.
    struct alignas(64) Slot {
      std::optional<Scratch> scratch;
    };
    std::vector<TrialOutcome> slots(n_trials);
    std::vector<Slot> scratches(planned_workers(n_trials));
    dispatch(n_trials, [&](unsigned worker, std::uint64_t local) {
      auto& scratch = scratches[worker].scratch;
      if (!scratch.has_value()) scratch.emplace();
      const std::uint64_t trial = first_trial + local;
      const std::uint64_t seed = trial_seed(base_seed, trial);
      TrialOutcome out = fn(*scratch, trial, seed);
      out.trial = trial;
      out.seed = seed;
      slots[local] = out;
    });
    TrialAccumulator acc;
    for (auto& out : slots) acc.add(out);
    return acc;
  }

  /// Like run_with_scratch(), but dispatches *blocks* of consecutive trials
  /// so a worker can hand each block to a lock-step batch kernel:
  /// fn(scratch, first, count, outs) must fill outs[0..count) with the
  /// outcomes of trials [first, first+count). Trial and seed fields are
  /// stamped here afterwards (fn derives per-trial seeds itself via
  /// trial_seed(base_seed, first + j), identical to the scalar path), and
  /// accumulation still walks global trial order — so for a bit-exact
  /// kernel the aggregate is byte-identical to run_with_scratch no matter
  /// the batch size or thread count.
  template <typename Scratch, typename Fn>
  [[nodiscard]] TrialAccumulator run_batched(std::uint64_t n_trials,
                                             std::uint64_t base_seed,
                                             std::uint64_t batch_size,
                                             Fn&& fn) const {
    return run_span_batched<Scratch>(0, n_trials, base_seed, batch_size,
                                     std::forward<Fn>(fn));
  }

  /// Span variant of run_batched: blocks cover the *global* trial range
  /// [first_trial, first_trial + n_trials), and fn receives global first
  /// indices (it already derives seeds as trial_seed(base_seed, first + j)).
  /// Block boundaries shift when a cell is sharded, but the batch kernel is
  /// bit-exact against the scalar path for any grouping, so merged
  /// aggregates stay byte-identical to an unsharded run.
  template <typename Scratch, typename Fn>
  [[nodiscard]] TrialAccumulator run_span_batched(std::uint64_t first_trial,
                                                  std::uint64_t n_trials,
                                                  std::uint64_t base_seed,
                                                  std::uint64_t batch_size,
                                                  Fn&& fn) const {
    struct alignas(64) Slot {
      std::optional<Scratch> scratch;
    };
    const std::uint64_t stride = batch_size == 0 ? 1 : batch_size;
    const std::uint64_t blocks = n_trials / stride + (n_trials % stride != 0);
    std::vector<TrialOutcome> slots(n_trials);
    std::vector<Slot> scratches(planned_workers(blocks));
    dispatch(blocks, [&](unsigned worker, std::uint64_t block) {
      auto& scratch = scratches[worker].scratch;
      if (!scratch.has_value()) scratch.emplace();
      const std::uint64_t local_first = block * stride;
      const std::uint64_t count =
          local_first + stride <= n_trials ? stride : n_trials - local_first;
      const std::uint64_t first = first_trial + local_first;
      fn(*scratch, first, count, slots.data() + local_first);
      for (std::uint64_t j = 0; j < count; ++j) {
        slots[local_first + j].trial = first + j;
        slots[local_first + j].seed = trial_seed(base_seed, first + j);
      }
    });
    TrialAccumulator acc;
    for (auto& out : slots) acc.add(out);
    return acc;
  }

 private:
  /// Number of worker threads a batch of `n_trials` will actually spawn.
  [[nodiscard]] unsigned planned_workers(std::uint64_t n_trials)
      const noexcept;

  /// Work-stealing-by-counter dispatch of body(worker, trial) over
  /// [0, n_trials); worker indices are dense in [0, planned_workers).
  void dispatch(std::uint64_t n_trials,
                const std::function<void(unsigned, std::uint64_t)>& body)
      const;

  unsigned threads_ = 1;
};

}  // namespace fnr::runner
